//! A semi-naive, bottom-up Datalog engine.
//!
//! Chord — the static race detector nAdroid builds on — expresses its
//! analyses (call graph, k-object-sensitive points-to, thread escape) as
//! Datalog programs solved by the bddbddb engine. This crate is the
//! equivalent substrate for nAdroid-rs: relations over dense `u32` terms,
//! positive Horn rules, and semi-naive fixpoint evaluation.
//!
//! # Example: transitive closure
//!
//! ```
//! use nadroid_datalog::{Database, RuleSet, Term};
//!
//! let mut db = Database::new();
//! let edge = db.relation("edge", 2);
//! let path = db.relation("path", 2);
//! db.insert(edge, &[1, 2]);
//! db.insert(edge, &[2, 3]);
//! db.insert(edge, &[3, 4]);
//!
//! let mut rules = RuleSet::new();
//! // path(x, y) :- edge(x, y).
//! rules.add(path, vec![Term::var(0), Term::var(1)])
//!     .when(edge, vec![Term::var(0), Term::var(1)]);
//! // path(x, z) :- path(x, y), edge(y, z).
//! rules.add(path, vec![Term::var(0), Term::var(2)])
//!     .when(path, vec![Term::var(0), Term::var(1)])
//!     .when(edge, vec![Term::var(1), Term::var(2)]);
//!
//! db.run(&rules);
//! assert!(db.contains(path, &[1, 4]));
//! assert_eq!(db.len(path), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a relation within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(u32);

impl RelId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A term in a rule atom: either a variable (identified by a small index,
/// scoped to the rule) or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule-scoped variable.
    Var(u8),
    /// A constant value.
    Const(u32),
}

impl Term {
    /// Shorthand for [`Term::Var`].
    #[must_use]
    pub fn var(i: u8) -> Term {
        Term::Var(i)
    }

    /// Shorthand for [`Term::Const`].
    #[must_use]
    pub fn val(v: u32) -> Term {
        Term::Const(v)
    }
}

/// One atom of a rule body or head: a relation applied to terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    rel: RelId,
    terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    #[must_use]
    pub fn new(rel: RelId, terms: Vec<Term>) -> Self {
        Atom { rel, terms }
    }
}

/// A positive Horn rule: `head :- body₀, body₁, ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    head: Atom,
    body: Vec<Atom>,
}

/// A collection of rules evaluated together to fixpoint.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

/// Builder handle returned by [`RuleSet::add`]; chain [`RuleBuilder::when`]
/// to append body atoms.
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    rules: &'a mut Vec<Rule>,
    index: usize,
}

impl RuleBuilder<'_> {
    /// Append a body atom to the rule.
    #[allow(clippy::return_self_not_must_use)]
    pub fn when(self, rel: RelId, terms: Vec<Term>) -> Self {
        self.rules[self.index].body.push(Atom::new(rel, terms));
        self
    }
}

impl RuleSet {
    /// An empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a rule with the given head; returns a builder to append body
    /// atoms. A rule with an empty body is a fact template (head must then
    /// be all-constant).
    pub fn add(&mut self, head_rel: RelId, head_terms: Vec<Term>) -> RuleBuilder<'_> {
        let index = self.rules.len();
        self.rules.push(Rule {
            head: Atom::new(head_rel, head_terms),
            body: Vec::new(),
        });
        RuleBuilder {
            rules: &mut self.rules,
            index,
        }
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[derive(Debug, Default)]
struct RelationData {
    name: String,
    arity: usize,
    /// All derived tuples.
    all: HashSet<Box<[u32]>>,
    /// Insertion-ordered copy for deterministic iteration.
    ordered: Vec<Box<[u32]>>,
    /// Tuples derived in the previous semi-naive iteration.
    delta: Vec<Box<[u32]>>,
}

/// A deductive database: named relations plus fixpoint evaluation.
#[derive(Debug, Default)]
pub struct Database {
    relations: Vec<RelationData>,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation with a fixed arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or a relation with this name exists.
    pub fn relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(arity > 0, "relations must have positive arity");
        assert!(
            !self.relations.iter().any(|r| r.name == name),
            "duplicate relation name {name:?}"
        );
        let id = RelId(self.relations.len() as u32);
        self.relations.push(RelationData {
            name,
            arity,
            ..Default::default()
        });
        id
    }

    /// Insert a base (EDB) tuple. Returns true if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation.
    pub fn insert(&mut self, rel: RelId, tuple: &[u32]) -> bool {
        let r = &mut self.relations[rel.index()];
        assert_eq!(
            tuple.len(),
            r.arity,
            "arity mismatch inserting into {}",
            r.name
        );
        let boxed: Box<[u32]> = tuple.into();
        if r.all.insert(boxed.clone()) {
            r.ordered.push(boxed.clone());
            r.delta.push(boxed);
            true
        } else {
            false
        }
    }

    /// Whether a tuple is present.
    #[must_use]
    pub fn contains(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.relations[rel.index()].all.contains(tuple)
    }

    /// Number of tuples in a relation.
    #[must_use]
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.index()].all.len()
    }

    /// Whether a relation is empty.
    #[must_use]
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.len(rel) == 0
    }

    /// Iterate the tuples of a relation in first-derivation order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[u32]> + '_ {
        self.relations[rel.index()]
            .ordered
            .iter()
            .map(AsRef::as_ref)
    }

    /// The declared name of a relation.
    #[must_use]
    pub fn name(&self, rel: RelId) -> &str {
        &self.relations[rel.index()].name
    }

    /// Run the rules to fixpoint with semi-naive evaluation.
    ///
    /// Newly derived tuples are added to the head relations; evaluation
    /// stops when an iteration derives nothing new. Running twice with the
    /// same rules is a no-op (fixpoints are idempotent).
    ///
    /// # Panics
    ///
    /// Panics if a rule's head contains a variable that does not occur in
    /// its body, or atom arities mismatch their relations.
    pub fn run(&mut self, rules: &RuleSet) {
        for rule in &rules.rules {
            self.check_rule(rule);
        }
        // Initially, everything already present counts as delta.
        for r in &mut self.relations {
            r.delta = r.ordered.clone();
        }
        loop {
            let mut new_tuples: Vec<(RelId, Box<[u32]>)> = Vec::new();
            for rule in &rules.rules {
                self.eval_rule(rule, &mut new_tuples);
            }
            for r in &mut self.relations {
                r.delta.clear();
            }
            let mut grew = false;
            for (rel, t) in new_tuples {
                let r = &mut self.relations[rel.index()];
                if r.all.insert(t.clone()) {
                    r.ordered.push(t.clone());
                    r.delta.push(t);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
    }

    fn check_rule(&self, rule: &Rule) {
        let mut body_vars = HashSet::new();
        for atom in &rule.body {
            let r = &self.relations[atom.rel.index()];
            assert_eq!(
                atom.terms.len(),
                r.arity,
                "arity mismatch in body atom of {}",
                r.name
            );
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    body_vars.insert(*v);
                }
            }
        }
        let hr = &self.relations[rule.head.rel.index()];
        assert_eq!(
            rule.head.terms.len(),
            hr.arity,
            "arity mismatch in head atom of {}",
            hr.name
        );
        for t in &rule.head.terms {
            if let Term::Var(v) = t {
                assert!(
                    body_vars.contains(v),
                    "head variable v{v} of rule for {} is unbound in the body",
                    hr.name
                );
            }
        }
    }

    /// Evaluate one rule semi-naively: once per body position, restrict
    /// that atom to the delta of its relation.
    fn eval_rule(&self, rule: &Rule, out: &mut Vec<(RelId, Box<[u32]>)>) {
        if rule.body.is_empty() {
            // Fact template: all-constant head (checked).
            let tuple: Box<[u32]> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(_) => unreachable!("checked: no unbound head vars"),
                })
                .collect();
            out.push((rule.head.rel, tuple));
            return;
        }
        for delta_pos in 0..rule.body.len() {
            if self.relations[rule.body[delta_pos].rel.index()]
                .delta
                .is_empty()
            {
                continue;
            }
            let mut bindings: HashMap<u8, u32> = HashMap::new();
            self.join(rule, 0, delta_pos, &mut bindings, out);
        }
    }

    fn join(
        &self,
        rule: &Rule,
        pos: usize,
        delta_pos: usize,
        bindings: &mut HashMap<u8, u32>,
        out: &mut Vec<(RelId, Box<[u32]>)>,
    ) {
        if pos == rule.body.len() {
            let tuple: Box<[u32]> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => bindings[v],
                })
                .collect();
            out.push((rule.head.rel, tuple));
            return;
        }
        let atom = &rule.body[pos];
        let r = &self.relations[atom.rel.index()];
        let source: &[Box<[u32]>] = if pos == delta_pos {
            &r.delta
        } else {
            &r.ordered
        };
        'tuples: for tuple in source {
            let mut local_bound: Vec<u8> = Vec::new();
            for (term, &value) in atom.terms.iter().zip(tuple.iter()) {
                match term {
                    Term::Const(c) => {
                        if *c != value {
                            for v in local_bound.drain(..) {
                                bindings.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(&bound) if bound != value => {
                            for v in local_bound.drain(..) {
                                bindings.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(*v, value);
                            local_bound.push(*v);
                        }
                    },
                }
            }
            self.join(rule, pos + 1, delta_pos, bindings, out);
            for v in local_bound {
                bindings.remove(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u8) -> Term {
        Term::var(i)
    }

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        for e in [[0u32, 1], [1, 2], [2, 3], [3, 4]] {
            db.insert(edge, &e);
        }
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.run(&rules);
        assert_eq!(db.len(path), 10); // 4+3+2+1
        assert!(db.contains(path, &[0, 4]));
        assert!(!db.contains(path, &[4, 0]));
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        db.insert(edge, &[0, 1]);
        db.insert(edge, &[1, 0]); // cycle
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(path, vec![v(1), v(2)]);
        db.run(&rules);
        let n = db.len(path);
        assert_eq!(n, 4); // {0,1}²
        db.run(&rules);
        assert_eq!(db.len(path), n);
    }

    #[test]
    fn constants_filter_joins() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let from_zero = db.relation("fromZero", 1);
        db.insert(edge, &[0, 1]);
        db.insert(edge, &[5, 6]);
        let mut rules = RuleSet::new();
        rules
            .add(from_zero, vec![v(0)])
            .when(edge, vec![Term::val(0), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(from_zero), 1);
        assert!(db.contains(from_zero, &[1]));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let self_loop = db.relation("selfLoop", 1);
        db.insert(edge, &[3, 3]);
        db.insert(edge, &[3, 4]);
        let mut rules = RuleSet::new();
        rules
            .add(self_loop, vec![v(0)])
            .when(edge, vec![v(0), v(0)]);
        db.run(&rules);
        assert_eq!(db.len(self_loop), 1);
        assert!(db.contains(self_loop, &[3]));
    }

    #[test]
    fn fact_rules_insert_constants() {
        let mut db = Database::new();
        let marker = db.relation("marker", 1);
        let mut rules = RuleSet::new();
        rules.add(marker, vec![Term::val(42)]);
        db.run(&rules);
        assert!(db.contains(marker, &[42]));
    }

    #[test]
    #[should_panic(expected = "unbound in the body")]
    fn unbound_head_var_panics() {
        let mut db = Database::new();
        let a = db.relation("a", 1);
        let b = db.relation("b", 1);
        let mut rules = RuleSet::new();
        rules.add(a, vec![v(1)]).when(b, vec![v(0)]);
        db.run(&rules);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut db = Database::new();
        let a = db.relation("a", 2);
        db.insert(a, &[1]);
    }

    #[test]
    fn three_way_join() {
        // grandparent(x, z) :- parent(x, y), parent(y, z), person(z).
        let mut db = Database::new();
        let parent = db.relation("parent", 2);
        let person = db.relation("person", 1);
        let gp = db.relation("grandparent", 2);
        db.insert(parent, &[1, 2]);
        db.insert(parent, &[2, 3]);
        db.insert(person, &[3]);
        let mut rules = RuleSet::new();
        rules
            .add(gp, vec![v(0), v(2)])
            .when(parent, vec![v(0), v(1)])
            .when(parent, vec![v(1), v(2)])
            .when(person, vec![v(2)]);
        db.run(&rules);
        assert_eq!(db.len(gp), 1);
        assert!(db.contains(gp, &[1, 3]));
    }

    #[test]
    fn incremental_inserts_then_rerun() {
        let mut db = Database::new();
        let edge = db.relation("edge", 2);
        let path = db.relation("path", 2);
        let mut rules = RuleSet::new();
        rules
            .add(path, vec![v(0), v(1)])
            .when(edge, vec![v(0), v(1)]);
        rules
            .add(path, vec![v(0), v(2)])
            .when(path, vec![v(0), v(1)])
            .when(edge, vec![v(1), v(2)]);
        db.insert(edge, &[0, 1]);
        db.run(&rules);
        assert_eq!(db.len(path), 1);
        db.insert(edge, &[1, 2]);
        db.run(&rules);
        assert!(db.contains(path, &[0, 2]));
        assert_eq!(db.len(path), 3);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut db = Database::new();
        let r = db.relation("r", 1);
        for i in (0..10).rev() {
            db.insert(r, &[i]);
        }
        let order: Vec<u32> = db.tuples(r).map(|t| t[0]).collect();
        assert_eq!(order, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn diamond_derivations_deduplicate() {
        let mut db = Database::new();
        let e = db.relation("e", 2);
        let p = db.relation("p", 2);
        // two paths from 0 to 3
        for t in [[0u32, 1], [0, 2], [1, 3], [2, 3]] {
            db.insert(e, &t);
        }
        let mut rules = RuleSet::new();
        rules.add(p, vec![v(0), v(1)]).when(e, vec![v(0), v(1)]);
        rules
            .add(p, vec![v(0), v(2)])
            .when(p, vec![v(0), v(1)])
            .when(e, vec![v(1), v(2)]);
        db.run(&rules);
        assert!(db.contains(p, &[0, 3]));
        assert_eq!(db.len(p), 5); // 4 edges + (0,3) once
    }
}
