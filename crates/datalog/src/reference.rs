//! The naive semi-naive evaluator the indexed engine replaced, retained
//! as a differential-testing oracle.
//!
//! [`NaiveDatabase`] mirrors the [`Database`](crate::Database) API but
//! evaluates joins by nested scans with a `HashMap` binding environment —
//! the original (pre-index) implementation, kept byte-for-byte in
//! behavior. The property suite in `tests/differential.rs` asserts the
//! compiled engine derives exactly the same relation contents *in the
//! same first-derivation order* on randomized programs; any divergence is
//! a bug in the index/plan layer, never in this module.
//!
//! This module is test infrastructure: it trades all performance for
//! obviousness, and nothing in the analysis pipeline should use it.

use crate::{Derivation, RelId, Rule, RuleSet, Term};
use std::collections::{HashMap, HashSet};

/// How a tuple was first derived: deriving rule index plus the premise
/// tuples it matched, in body order. Stored per row (`None` = base fact)
/// — tuples instead of arena rows, because obviousness beats compactness
/// in the oracle.
type NaiveProv = (usize, Vec<(RelId, Box<[u32]>)>);

/// Candidate head tuples produced by one rule evaluation, with the
/// provenance recorded when enabled.
type Derived = Vec<(RelId, Box<[u32]>, Option<NaiveProv>)>;

#[derive(Debug, Default)]
struct RelationData {
    name: String,
    arity: usize,
    /// All derived tuples.
    all: HashSet<Box<[u32]>>,
    /// Insertion-ordered copy for deterministic iteration.
    ordered: Vec<Box<[u32]>>,
    /// Tuples derived in the previous semi-naive iteration.
    delta: Vec<Box<[u32]>>,
    /// While recording: one provenance entry per row, parallel to
    /// `ordered`. Empty when recording is off.
    prov: Vec<Option<NaiveProv>>,
}

/// The original naive engine, API-compatible with
/// [`Database`](crate::Database) for the operations the differential
/// tests exercise.
#[derive(Debug, Default)]
pub struct NaiveDatabase {
    relations: Vec<RelationData>,
    record_provenance: bool,
}

impl NaiveDatabase {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation with a fixed arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or a relation with this name exists.
    #[allow(clippy::cast_possible_truncation)]
    pub fn relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        let name = name.into();
        assert!(arity > 0, "relations must have positive arity");
        assert!(
            !self.relations.iter().any(|r| r.name == name),
            "duplicate relation name {name:?}"
        );
        let id = RelId(self.relations.len() as u32);
        self.relations.push(RelationData {
            name,
            arity,
            ..Default::default()
        });
        id
    }

    /// Insert a base (EDB) tuple. Returns true if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation.
    pub fn insert(&mut self, rel: RelId, tuple: &[u32]) -> bool {
        let r = &mut self.relations[rel.index()];
        assert_eq!(
            tuple.len(),
            r.arity,
            "arity mismatch inserting into {}",
            r.name
        );
        let boxed: Box<[u32]> = tuple.into();
        if r.all.insert(boxed.clone()) {
            r.ordered.push(boxed.clone());
            r.delta.push(boxed);
            if self.record_provenance {
                self.relations[rel.index()].prov.push(None);
            }
            true
        } else {
            false
        }
    }

    /// Mirror of [`Database::set_provenance`](crate::Database::set_provenance):
    /// enabling backfills existing rows as base facts, disabling discards.
    pub fn set_provenance(&mut self, on: bool) {
        self.record_provenance = on;
        for r in &mut self.relations {
            if on {
                r.prov.resize(r.ordered.len(), None);
            } else {
                r.prov = Vec::new();
            }
        }
    }

    /// Whether derivation recording is enabled.
    #[must_use]
    pub fn provenance_enabled(&self) -> bool {
        self.record_provenance
    }

    /// Mirror of [`Database::explain`](crate::Database::explain), by
    /// linear search over the ordered tuple list.
    #[must_use]
    pub fn explain(&self, rel: RelId, tuple: &[u32]) -> Option<Derivation> {
        if !self.record_provenance {
            return None;
        }
        if !self.contains(rel, tuple) {
            return None;
        }
        Some(self.derivation_of(rel, tuple))
    }

    fn derivation_of(&self, rel: RelId, tuple: &[u32]) -> Derivation {
        let r = &self.relations[rel.index()];
        let pos = r
            .ordered
            .iter()
            .position(|t| &**t == tuple)
            .expect("tuple present");
        match r.prov.get(pos).and_then(Option::as_ref) {
            None => Derivation {
                rel,
                tuple: tuple.to_vec(),
                rule: None,
                premises: Vec::new(),
            },
            Some((rule, premises)) => Derivation {
                rel,
                tuple: tuple.to_vec(),
                rule: Some(*rule),
                premises: premises
                    .iter()
                    .map(|(prel, pt)| self.derivation_of(*prel, pt))
                    .collect(),
            },
        }
    }

    /// Whether a tuple is present.
    #[must_use]
    pub fn contains(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.relations[rel.index()].all.contains(tuple)
    }

    /// Number of tuples in a relation.
    #[must_use]
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.index()].all.len()
    }

    /// Whether a relation is empty.
    #[must_use]
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.len(rel) == 0
    }

    /// Iterate the tuples of a relation in first-derivation order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[u32]> + '_ {
        self.relations[rel.index()]
            .ordered
            .iter()
            .map(AsRef::as_ref)
    }

    /// Run the rules to fixpoint with semi-naive evaluation (every run
    /// restarts with the full database as delta — the behavior the
    /// indexed engine's high-water mark optimizes away).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Database::run`](crate::Database::run).
    pub fn run(&mut self, rules: &RuleSet) {
        for rule in &rules.rules {
            self.check_rule(rule);
        }
        // Initially, everything already present counts as delta.
        for r in &mut self.relations {
            r.delta = r.ordered.clone();
        }
        loop {
            let mut new_tuples: Vec<(RelId, Box<[u32]>, Option<NaiveProv>)> = Vec::new();
            for (rule_idx, rule) in rules.rules.iter().enumerate() {
                self.eval_rule(rule, rule_idx, &mut new_tuples);
            }
            for r in &mut self.relations {
                r.delta.clear();
            }
            let mut grew = false;
            let record = self.record_provenance;
            for (rel, t, prov) in new_tuples {
                let r = &mut self.relations[rel.index()];
                // First occurrence wins — for the tuple and its recorded
                // derivation alike, matching the indexed engine.
                if r.all.insert(t.clone()) {
                    r.ordered.push(t.clone());
                    r.delta.push(t);
                    if record {
                        r.prov.push(prov);
                    }
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
    }

    fn check_rule(&self, rule: &Rule) {
        let mut body_vars = HashSet::new();
        for atom in &rule.body {
            let r = &self.relations[atom.rel.index()];
            assert_eq!(
                atom.terms.len(),
                r.arity,
                "arity mismatch in body atom of {}",
                r.name
            );
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    body_vars.insert(*v);
                }
            }
        }
        let hr = &self.relations[rule.head.rel.index()];
        assert_eq!(
            rule.head.terms.len(),
            hr.arity,
            "arity mismatch in head atom of {}",
            hr.name
        );
        for t in &rule.head.terms {
            if let Term::Var(v) = t {
                assert!(
                    body_vars.contains(v),
                    "head variable v{v} of rule for {} is unbound in the body",
                    hr.name
                );
            }
        }
    }

    /// Evaluate one rule semi-naively: once per body position, restrict
    /// that atom to the delta of its relation.
    fn eval_rule(
        &self,
        rule: &Rule,
        rule_idx: usize,
        out: &mut Derived,
    ) {
        if rule.body.is_empty() {
            // Fact template: all-constant head (checked).
            let tuple: Box<[u32]> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(_) => unreachable!("checked: no unbound head vars"),
                })
                .collect();
            let prov = self
                .record_provenance
                .then(|| (rule_idx, Vec::new()));
            out.push((rule.head.rel, tuple, prov));
            return;
        }
        for delta_pos in 0..rule.body.len() {
            if self.relations[rule.body[delta_pos].rel.index()]
                .delta
                .is_empty()
            {
                continue;
            }
            let mut bindings: HashMap<u8, u32> = HashMap::new();
            let mut path: Vec<(RelId, Box<[u32]>)> = Vec::new();
            self.join(rule, rule_idx, 0, delta_pos, &mut bindings, &mut path, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        rule: &Rule,
        rule_idx: usize,
        pos: usize,
        delta_pos: usize,
        bindings: &mut HashMap<u8, u32>,
        path: &mut Vec<(RelId, Box<[u32]>)>,
        out: &mut Derived,
    ) {
        if pos == rule.body.len() {
            let tuple: Box<[u32]> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => bindings[v],
                })
                .collect();
            let prov = self
                .record_provenance
                .then(|| (rule_idx, path.clone()));
            out.push((rule.head.rel, tuple, prov));
            return;
        }
        let atom = &rule.body[pos];
        let r = &self.relations[atom.rel.index()];
        let source: &[Box<[u32]>] = if pos == delta_pos {
            &r.delta
        } else {
            &r.ordered
        };
        'tuples: for tuple in source {
            let mut local_bound: Vec<u8> = Vec::new();
            for (term, &value) in atom.terms.iter().zip(tuple.iter()) {
                match term {
                    Term::Const(c) => {
                        if *c != value {
                            for v in local_bound.drain(..) {
                                bindings.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(&bound) if bound != value => {
                            for v in local_bound.drain(..) {
                                bindings.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(*v, value);
                            local_bound.push(*v);
                        }
                    },
                }
            }
            // Matched premises are tracked only while recording, keeping
            // the non-recording path allocation-identical to the original.
            if self.record_provenance {
                path.push((atom.rel, tuple.clone()));
            }
            self.join(rule, rule_idx, pos + 1, delta_pos, bindings, path, out);
            if self.record_provenance {
                path.pop();
            }
            for v in local_bound {
                bindings.remove(&v);
            }
        }
    }
}
