//! Deterministic scoped work-pool for intra-analysis parallelism.
//!
//! Every parallel region in the pipeline is a *chunked index-range map*:
//! the input is an index range `0..len`, split into fixed-size chunks
//! whose boundaries depend only on `(len, grain)` — never on the thread
//! count — and a pure-per-chunk function maps each chunk to a result.
//! [`map_chunks`] runs the chunks on a scoped worker pool and returns
//! the per-chunk results **in chunk-index order**, so the concatenation
//! of the results is byte-identical to a sequential left-to-right scan
//! at any thread count. That ordered-merge invariant is what lets the
//! detector, the filter pipeline, the points-to epoch planner, and the
//! Datalog rule evaluator parallelize without perturbing warning ids,
//! Figure 5 tallies, or obs counters (see `docs/parallelism.md`).
//!
//! The thread count is *ambient*: [`with_threads`] installs it for a
//! scope (the pipeline wraps each analysis in
//! `with_threads(config.threads, ..)`), and [`map_chunks`] reads it via
//! [`current`]. With one thread — the default — every region runs
//! inline on the calling thread with no pool, no locks, and no spawns.
//!
//! Workers re-install the calling thread's obs recorder and cancel
//! token, so counters bumped inside a parallel region aggregate exactly
//! into the same registry, and `cancel::checkpoint` keeps firing. A
//! panicking chunk (including the cooperative-cancellation unwind) is
//! caught per chunk and re-raised on the calling thread with the
//! lowest-index chunk's payload, preserving the `Cancelled` contract
//! through the pool.
//!
//! ```
//! use nadroid_par as par;
//!
//! let squares = par::with_threads(4, || {
//!     par::map_chunks(10, 3, |r| r.map(|i| i * i).collect::<Vec<_>>())
//! });
//! let flat: Vec<usize> = squares.into_iter().flatten().collect();
//! assert_eq!(flat, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_obs as obs;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    // The ambient thread budget for parallel regions opened from this
    // thread. 1 (sequential) until a `with_threads` scope raises it.
    static AMBIENT: Cell<usize> = const { Cell::new(1) };
}

/// The current thread's ambient parallelism budget (≥ 1).
#[must_use]
pub fn current() -> usize {
    AMBIENT.with(|c| c.get().max(1))
}

/// Run `f` with the ambient thread budget set to `n` (clamped to ≥ 1).
/// The previous budget is restored when `f` returns or unwinds, so
/// scopes nest.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Map the index range `0..len` over fixed-size chunks of `grain`
/// indices, in parallel up to the ambient thread budget, and return the
/// per-chunk results in chunk-index order.
///
/// Chunk boundaries depend only on `(len, grain)`, so the returned
/// vector — and therefore any order-respecting merge of it — is
/// identical at every thread count. `f` must be pure up to its chunk
/// (it may read shared state and bump obs counters, both of which
/// aggregate exactly).
///
/// With an ambient budget of 1, or when the range fits in one chunk,
/// `f` runs inline on the calling thread.
///
/// # Panics
///
/// Re-raises the panic of the lowest-index panicking chunk on the
/// calling thread (worker panics never leak into `std::thread::scope`'s
/// own abort path).
pub fn map_chunks<R, F>(len: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let grain = grain.max(1);
    let n_chunks = len.div_ceil(grain);
    let chunk_range = |c: usize| c * grain..((c + 1) * grain).min(len);
    let workers = current().min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks).map(|c| f(chunk_range(c))).collect();
    }

    type Payload = Box<dyn std::any::Any + Send + 'static>;
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, Result<R, Payload>)>> =
        Mutex::new(Vec::with_capacity(n_chunks));
    // Captured once on the calling thread; each worker re-installs them
    // so instrumentation and cancellation behave as if inline.
    let recorder = obs::current_recorder();
    let token = obs::cancel::current_token();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _rec = recorder.as_ref().map(obs::Recorder::install);
                let _tok = token.as_ref().map(obs::cancel::CancelToken::install);
                loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let out = catch_unwind(AssertUnwindSafe(|| f(chunk_range(c))));
                    let failed = out.is_err();
                    results.lock().expect("par results lock").push((c, out));
                    if failed {
                        // Stop handing out further chunks; in-flight
                        // chunks on other workers still finish (or are
                        // caught) before the scope joins.
                        poisoned.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let mut results = results.into_inner().expect("par results lock");
    results.sort_by_key(|(c, _)| *c);
    // Deterministic error selection: the lowest-index failed chunk wins,
    // which keeps the cancellation payload (and any diagnostic panic)
    // stable across schedules.
    if let Some(pos) = results.iter().position(|(_, r)| r.is_err()) {
        let (_, failed) = results.swap_remove(pos);
        match failed {
            Err(payload) => resume_unwind(payload),
            Ok(_) => unreachable!("position() found an Err"),
        }
    }
    results
        .into_iter()
        .map(|(_, r)| r.expect("errors re-raised above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_budget_defaults_to_one_and_nests() {
        assert_eq!(current(), 1);
        with_threads(4, || {
            assert_eq!(current(), 4);
            with_threads(2, || assert_eq!(current(), 2));
            assert_eq!(current(), 4, "inner scope restores");
        });
        assert_eq!(current(), 1);
        with_threads(0, || assert_eq!(current(), 1, "clamped to ≥ 1"));
    }

    #[test]
    fn chunk_results_merge_in_index_order_at_every_thread_count() {
        let sequential: Vec<usize> = (0..1000).map(|i| i * 7).collect();
        for threads in [1, 2, 4, 8] {
            let chunks = with_threads(threads, || {
                map_chunks(1000, 37, |r| r.map(|i| i * 7).collect::<Vec<_>>())
            });
            assert_eq!(chunks.len(), 1000usize.div_ceil(37));
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, sequential, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_chunk_ranges_run_inline() {
        assert!(map_chunks(0, 8, |r| r.len()).is_empty());
        let one = with_threads(8, || map_chunks(5, 100, |r| r.collect::<Vec<_>>()));
        assert_eq!(one, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn counters_aggregate_exactly_across_thread_counts() {
        let expect = 10_000u64;
        for threads in [1, 2, 4, 8] {
            let rec = obs::Recorder::new();
            {
                let _g = rec.install();
                with_threads(threads, || {
                    map_chunks(expect as usize, 64, |r| {
                        obs::counter("par.items", r.len() as u64);
                    })
                });
            }
            #[cfg(feature = "enabled")]
            assert_eq!(
                rec.counter_value("par.items"),
                expect,
                "threads={threads}"
            );
            #[cfg(not(feature = "enabled"))]
            assert_eq!(rec.counter_value("par.items"), 0);
        }
    }

    #[test]
    fn a_panicking_chunk_reaches_the_caller() {
        obs::cancel::install_quiet_hook();
        for threads in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                with_threads(threads, || {
                    map_chunks(100, 10, |r| {
                        assert!(!r.contains(&55), "chunk bug");
                    })
                })
            }))
            .unwrap_err();
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| err.downcast_ref::<String>().map(String::as_str))
                .unwrap_or_default();
            assert!(msg.contains("chunk bug"), "threads={threads}: {msg}");
        }
    }

    #[test]
    fn cancellation_unwinds_through_the_pool() {
        obs::cancel::install_quiet_hook();
        let token = obs::cancel::CancelToken::new();
        token.cancel();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _scope = token.install();
            with_threads(4, || {
                map_chunks(1000, 10, |_r| obs::cancel::checkpoint())
            })
        }))
        .unwrap_err();
        assert!(obs::cancel::was_cancelled(&*err));
    }

    #[test]
    fn shared_read_only_state_is_visible_to_workers() {
        let table: Vec<u64> = (0..4096).map(|i| i * i).collect();
        let sums = with_threads(4, || {
            map_chunks(table.len(), 256, |r| {
                r.map(|i| table[i]).sum::<u64>()
            })
        });
        assert_eq!(sums.iter().sum::<u64>(), table.iter().sum::<u64>());
    }
}
