//! The nAdroid-rs pipeline (Figure 2 of the paper): modeling →
//! detection → filtering → reporting, plus dynamic validation and the
//! false-positive taxonomy.
//!
//! ```text
//! APK  ──►  threadified program  ──►  potential UAFs  ──►  remaining UAFs
//!      §4 modeling           §5 detection          §6 filtering
//! ```
//!
//! # Example
//!
//! ```
//! use nadroid_core::{analyze, AnalysisConfig};
//! use nadroid_ir::parse_program;
//!
//! let p = parse_program(
//!     r#"
//!     app Demo
//!     activity Console {
//!         field bound: Console
//!         cb onCreate { bind this }
//!         cb onServiceConnected { bound = new Console }
//!         cb onServiceDisconnected { bound = null }
//!         cb onCreateContextMenu { use bound }
//!     }
//!     "#,
//! ).unwrap();
//! let analysis = analyze(&p, &AnalysisConfig::default());
//! let summary = analysis.summary();
//! assert_eq!(summary.after_unsound, 1, "the ConnectBot UAF survives");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpclass;
pub mod json;
pub mod provenance;
pub mod render;
pub mod report;

pub use fpclass::{classify_fp, component_reachable, FpCause};
pub use json::{
    esc, fingerprint, parse_json, phase_timings_json, program_hash, render_json,
    render_run_report, warning_population_digest, JsonValue,
};
pub use provenance::{
    render_explain, render_explain_from_json, render_provenance_json,
    render_provenance_json_with, ConfirmVerdict, Confirmation, DerivationNode, WarningProvenance,
    PROVENANCE_SCHEMA,
};
pub use render::render_report;
pub use report::{classify_pair, rank_key, render_warning, Endpoint, PairType, RenderedWarning};

use nadroid_detector::{detect_with, distinct_pairs, DetectorOptions, UafWarning};
use nadroid_dynamic::{explore, ExploreConfig, Goal, Witness};
use nadroid_filters::refute::{Refutation, Refuter};
use nadroid_filters::{FilterKind, FilterOutcome, Filters};
use nadroid_hb::HbGraph;
use nadroid_ir::{InstrId, Program};
use nadroid_obs as obs;
use nadroid_pointsto::{Escape, PointsTo};
use nadroid_threadify::ThreadModel;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Points-to sensitivity (the paper uses k = 2).
    pub k: u32,
    /// Detector options (§5's Chord modifications).
    pub detector: DetectorOptions,
    /// Sound filters to apply, in order.
    pub sound_filters: Vec<FilterKind>,
    /// Unsound filters to apply after the sound ones.
    pub unsound_filters: Vec<FilterKind>,
    /// Also run the context-insensitive Datalog baseline after filtering
    /// and record agreement counters/spans. Off by default — it is the
    /// architecture-validation pass (the role bddbddb played for Chord),
    /// not part of the pipeline, and its time is excluded from
    /// [`PhaseTimings`]. The CLI enables it when tracing so rule-level
    /// Datalog spans appear in the capture.
    pub datalog_crosscheck: bool,
    /// Drop racy pairs whose use is must-ordered before its free
    /// (`must_hb(use, free)` in the [`HbGraph`] closure) before they enter
    /// the filter pipeline. Off by default: the pruned pairs never reach
    /// the filters, so `Summary::potential` and the Figure 5 populations
    /// shrink — the timing driver opts in to measure the saved work.
    /// Free-before-use orderings are never pruned (they are the bugs).
    pub mhp_preprune: bool,
    /// Run the sound reachability-refutation pass over the unsound
    /// survivors (`nadroid_filters::refute`). On by default: the
    /// refuter only acts on predicate-extended facts (enabling/disabling
    /// summaries, fragment and task-stack automata), so programs that
    /// use none of the summarized APIs — including the whole 27-app
    /// paper corpus — are byte-identical with it on or off.
    pub refutation: bool,
    /// Worker threads for the parallel phases (detection, filtering,
    /// points-to planning, Datalog rule evaluation). `1` (the default)
    /// keeps every phase on the calling thread; any value produces
    /// byte-identical output — see `docs/parallelism.md`. The default
    /// honors the `NADROID_THREADS` environment variable so whole test
    /// suites can be swept across thread counts without plumbing.
    pub threads: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        let threads = std::env::var("NADROID_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 256));
        AnalysisConfig {
            k: 2,
            detector: DetectorOptions::default(),
            sound_filters: FilterKind::sound().to_vec(),
            unsound_filters: FilterKind::unsound().to_vec(),
            datalog_crosscheck: false,
            mhp_preprune: false,
            refutation: true,
            threads,
        }
    }
}

/// Wall-clock time of each pipeline phase (§8.8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Threadification (§4).
    pub modeling: Duration,
    /// Happens-before graph construction and Datalog closure.
    pub hb: Duration,
    /// Points-to + escape + race detection (§5).
    pub detection: Duration,
    /// Filter evaluation (§6).
    pub filtering: Duration,
    /// Detection sub-phase: the k-object-sensitive points-to solve.
    pub pointsto: Duration,
    /// Detection sub-phase: thread-escape computation.
    pub escape: Duration,
    /// Detection sub-phase: racy-pair enumeration.
    pub detect: Duration,
}

impl PhaseTimings {
    /// Total time.
    ///
    /// In debug builds, asserts the sub-phase invariant: the detection
    /// sub-phases are measured directly (not by subtraction) and must
    /// sum to no more than the enclosing detection phase.
    #[must_use]
    pub fn total(&self) -> Duration {
        debug_assert!(
            self.pointsto + self.escape + self.detect <= self.detection,
            "detection sub-phases exceed the detection phase: \
             {:?} + {:?} + {:?} > {:?}",
            self.pointsto,
            self.escape,
            self.detect,
            self.detection
        );
        self.modeling + self.hb + self.detection + self.filtering
    }
}

/// Aggregate counts of one analysis — the per-app row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Approximate source lines.
    pub loc: usize,
    /// Static entry-callback count.
    pub ec: usize,
    /// Static posted-callback count.
    pub pc: usize,
    /// Static thread count (dummy main + task bodies + native threads).
    pub threads: usize,
    /// Potential UAF pairs detected (§5).
    pub potential: usize,
    /// Pairs remaining after the sound filters.
    pub after_sound: usize,
    /// Pairs remaining after sound + unsound filters.
    pub after_unsound: usize,
    /// Unsound-pass survivors the sound reachability refuter refuted
    /// (distinct pairs; zero whenever the program uses no summarized
    /// enable/disable API).
    pub refuted: usize,
    /// Pairs remaining after the refutation pass — what the report
    /// actually shows. Equals `after_unsound - refuted`.
    pub after_refutation: usize,
}

/// The result of running the pipeline on one program.
#[derive(Debug)]
pub struct Analysis<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    threads: ThreadModel,
    pts: PointsTo,
    escape: Escape,
    /// Raw warnings (per thread-pair granularity).
    warnings: Vec<UafWarning>,
    /// Outcome of the sound-filter pass over every warning.
    sound_outcomes: Vec<FilterOutcome>,
    /// Outcome of the unsound-filter pass over the sound survivors.
    unsound_outcomes: Vec<FilterOutcome>,
    /// Refutations of unsound-pass survivors, aligned with the
    /// surviving subset of `unsound_outcomes` (empty when
    /// `config.refutation` is off or nothing refutes).
    refutations: Vec<(UafWarning, Refutation)>,
    /// The materialized happens-before relation every HB-family filter
    /// query was answered from.
    hb: HbGraph,
    timings: PhaseTimings,
}

/// Run the full pipeline.
///
/// Each phase (and each detection sub-phase) runs under an
/// [`nadroid_obs`] span, and every layer feeds the installed recorder's
/// counters — see `docs/observability.md` for the naming scheme. With no
/// recorder installed the instrumentation is a thread-local check.
/// Sub-phase durations are measured directly around each sub-phase (not
/// derived by subtraction), so `pointsto + escape + detect` can never
/// exceed `detection`.
#[must_use]
pub fn analyze<'p>(program: &'p Program, config: &AnalysisConfig) -> Analysis<'p> {
    // The thread budget is ambient (thread-local) rather than plumbed
    // through every phase signature; the parallel phases read it via
    // `nadroid_par::current()` and fall back to sequential at 1.
    nadroid_par::with_threads(config.threads, || analyze_inner(program, config))
}

fn analyze_inner<'p>(program: &'p Program, config: &AnalysisConfig) -> Analysis<'p> {
    let _span = obs::span("analyze");

    let t0 = Instant::now();
    let threads = {
        let _s = obs::span("modeling");
        ThreadModel::build(program)
    };
    let modeling = t0.elapsed();
    if obs::recording() {
        obs::counter("model.threads", threads.thread_count() as u64);
        obs::counter("model.entry_callbacks", threads.entry_callback_count() as u64);
        obs::counter("model.posted_callbacks", threads.posted_callback_count() as u64);
    }

    let t_hb = Instant::now();
    let hb = {
        let _s = obs::span("hb");
        HbGraph::build(program, &threads)
    };
    let hb_time = t_hb.elapsed();

    let t1 = Instant::now();
    let _detection_span = obs::span("detection");
    let t_sub = Instant::now();
    let pts = {
        let _s = obs::span("pointsto");
        PointsTo::run(program, &threads, config.k)
    };
    let pointsto = t_sub.elapsed();
    let t_sub = Instant::now();
    let escape = {
        let _s = obs::span("escape");
        Escape::compute(program, &threads, &pts)
    };
    let escape_time = t_sub.elapsed();
    let t_sub = Instant::now();
    let warnings = {
        let _s = obs::span("detect");
        let preprune = config.mhp_preprune.then_some(&hb);
        detect_with(program, &threads, &pts, &escape, config.detector, preprune)
    };
    let detect_time = t_sub.elapsed();
    drop(_detection_span);
    let detection = t1.elapsed();

    let t2 = Instant::now();
    let _filtering_span = obs::span("filtering");
    let filters = Filters::with_hb(program, &threads, &pts, &escape, &hb);
    let sound_outcomes = filters.pipeline(warnings.clone(), &config.sound_filters);
    let survivors: Vec<UafWarning> = sound_outcomes
        .iter()
        .filter(|o| o.survives())
        .map(|o| o.warning.clone())
        .collect();
    let unsound_outcomes = filters.pipeline(survivors, &config.unsound_filters);
    nadroid_filters::record_tallies(&sound_outcomes, &config.sound_filters);
    nadroid_filters::record_tallies(&unsound_outcomes, &config.unsound_filters);
    // The sound refutation pass (predicate-extended ordering) runs last,
    // over the unsound survivors only — mirroring where a human would
    // triage. It is a no-op unless the program uses a summarized
    // enable/disable API, so the §6 populations above are untouched.
    let mut refutations = Vec::new();
    if config.refutation {
        let _s = obs::span("refute");
        let refuter = Refuter::new(program, &threads, &hb);
        for o in unsound_outcomes.iter().filter(|o| o.survives()) {
            if let Some(r) = refuter.refute(&o.warning) {
                refutations.push((o.warning.clone(), r));
            }
        }
        if obs::recording() {
            obs::counter("filters.refuted", refutations.len() as u64);
        }
    }
    drop(_filtering_span);
    let filtering = t2.elapsed();

    if config.datalog_crosscheck {
        datalog_crosscheck(program, &threads, &pts);
    }

    Analysis {
        program,
        config: config.clone(),
        threads,
        pts,
        escape,
        warnings,
        sound_outcomes,
        unsound_outcomes,
        refutations,
        hb,
        timings: PhaseTimings {
            modeling,
            hb: hb_time,
            detection,
            filtering,
            pointsto,
            escape: escape_time,
            detect: detect_time,
        },
    }
}

/// The architecture-validation pass (the role bddbddb played for Chord):
/// solve the context-insensitive Andersen baseline on the Datalog engine
/// — emitting rule-level `datalog.*` spans into the installed recorder —
/// and record how far the k-sensitive solver's variable coverage agrees.
/// Deliberately outside [`PhaseTimings`]: it validates the pipeline, it
/// is not part of it.
fn datalog_crosscheck(program: &Program, threads: &ThreadModel, pts: &PointsTo) {
    let _s = obs::span("datalog.crosscheck");
    let baseline = nadroid_pointsto::datalog_baseline(program, threads);
    if obs::recording() {
        obs::counter("crosscheck.baseline_vars", baseline.len() as u64);
        let covered = baseline
            .keys()
            .filter(|&&(m, l)| !pts.pts(m, l).is_empty())
            .count();
        obs::counter("crosscheck.vars_covered_by_solver", covered as u64);
    }
}

impl<'p> Analysis<'p> {
    /// The analyzed program.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The configuration the pipeline ran with.
    #[must_use]
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The threadification model.
    #[must_use]
    pub fn threads(&self) -> &ThreadModel {
        &self.threads
    }

    /// The points-to result.
    #[must_use]
    pub fn pts(&self) -> &PointsTo {
        &self.pts
    }

    /// The escape result.
    #[must_use]
    pub fn escape(&self) -> &Escape {
        &self.escape
    }

    /// All raw warnings (per thread-pair granularity).
    #[must_use]
    pub fn warnings(&self) -> &[UafWarning] {
        &self.warnings
    }

    /// Sound-filter outcomes over all warnings.
    #[must_use]
    pub fn sound_outcomes(&self) -> &[FilterOutcome] {
        &self.sound_outcomes
    }

    /// Unsound-filter outcomes over the sound survivors.
    #[must_use]
    pub fn unsound_outcomes(&self) -> &[FilterOutcome] {
        &self.unsound_outcomes
    }

    /// Warnings surviving both filter stages and the refutation pass —
    /// the reported set.
    #[must_use]
    pub fn survivors(&self) -> Vec<&UafWarning> {
        self.unsound_outcomes
            .iter()
            .filter(|o| o.survives())
            .map(|o| &o.warning)
            .filter(|w| self.refutation_of(w).is_none())
            .collect()
    }

    /// Unsound-pass survivors the refuter refuted, with the
    /// contradiction evidence.
    #[must_use]
    pub fn refutations(&self) -> &[(UafWarning, Refutation)] {
        &self.refutations
    }

    /// The refutation of one warning, if the refuter refuted it.
    #[must_use]
    pub fn refutation_of(&self, w: &UafWarning) -> Option<&Refutation> {
        self.refutations
            .iter()
            .find(|(rw, _)| rw == w)
            .map(|(_, r)| r)
    }

    /// Phase timings (§8.8).
    #[must_use]
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// The happens-before graph the pipeline built and queried.
    #[must_use]
    pub fn hb(&self) -> &HbGraph {
        &self.hb
    }

    /// The filter engine, for ad-hoc queries. Borrows the analysis's own
    /// [`HbGraph`] rather than rebuilding one.
    #[must_use]
    pub fn filters(&self) -> Filters<'_> {
        Filters::with_hb(self.program, &self.threads, &self.pts, &self.escape, &self.hb)
    }

    /// Aggregate counts (one Table 1 row), at distinct (use, free) pair
    /// granularity.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let survivors_sound: Vec<UafWarning> = self
            .sound_outcomes
            .iter()
            .filter(|o| o.survives())
            .map(|o| o.warning.clone())
            .collect();
        let survivors_unsound: Vec<UafWarning> = self
            .unsound_outcomes
            .iter()
            .filter(|o| o.survives())
            .map(|o| o.warning.clone())
            .collect();
        let survivors_all: Vec<UafWarning> = self.survivors().into_iter().cloned().collect();
        let after_unsound = distinct_pairs(&survivors_unsound);
        let after_refutation = distinct_pairs(&survivors_all);
        Summary {
            loc: self.program.loc(),
            ec: self.threads.entry_callback_count(),
            pc: self.threads.posted_callback_count(),
            threads: self.threads.thread_count(),
            potential: distinct_pairs(&self.warnings),
            after_sound: distinct_pairs(&survivors_sound),
            after_unsound,
            refuted: after_unsound - after_refutation,
            after_refutation,
        }
    }

    /// Distribution of surviving pairs over Table 1's type columns
    /// (distinct pairs; a pair racing under several thread pairs counts
    /// once, under its highest-ranked type).
    #[must_use]
    pub fn survivor_types(&self) -> Vec<(PairType, usize)> {
        use std::collections::HashMap;
        let mut best: HashMap<(InstrId, InstrId), PairType> = HashMap::new();
        for w in self.survivors() {
            let ty = classify_pair(&self.threads, w);
            best.entry(w.pair())
                .and_modify(|t| {
                    if rank_key(ty) < rank_key(*t) {
                        *t = ty;
                    }
                })
                .or_insert(ty);
        }
        let mut counts: Vec<(PairType, usize)> = PairType::all()
            .iter()
            .map(|&t| (t, best.values().filter(|&&v| v == t).count()))
            .collect();
        counts.retain(|(_, n)| *n > 0);
        counts
    }

    /// Dynamically validate a warning: search for an NPE whose null was
    /// loaded at the warning's use and written by its free (§7's manual
    /// validation, automated).
    #[must_use]
    pub fn validate(&self, w: &UafWarning, cfg: ExploreConfig) -> Option<Witness> {
        explore(
            self.program,
            Goal::Pair {
                use_instr: w.use_access.instr,
                free_instr: w.free_access.instr,
            },
            cfg,
        )
    }

    /// Validate all surviving warnings; returns (confirmed, unconfirmed)
    /// at distinct-pair granularity, with the FP taxonomy applied to the
    /// unconfirmed ones.
    #[must_use]
    pub fn validate_survivors(&self, cfg: ExploreConfig) -> ValidationResult {
        use std::collections::HashMap;
        let mut by_pair: HashMap<(InstrId, InstrId), &UafWarning> = HashMap::new();
        for w in self.survivors() {
            by_pair.entry(w.pair()).or_insert(w);
        }
        let mut confirmed = Vec::new();
        let mut false_positives = Vec::new();
        for (_, w) in by_pair {
            match self.validate(w, cfg) {
                Some(witness) => confirmed.push((w.clone(), witness)),
                None => false_positives.push((w.clone(), classify_fp(self.program, &self.pts, w))),
            }
        }
        // Deterministic order for reporting.
        confirmed.sort_by_key(|(w, _)| w.pair());
        false_positives.sort_by_key(|(w, _)| w.pair());
        ValidationResult {
            confirmed,
            false_positives,
        }
    }

    /// Surviving warnings grouped by racy field, as §7's report groups
    /// them (one entry per field, with the distinct pairs under it).
    #[must_use]
    pub fn survivors_by_field(&self) -> Vec<(nadroid_ir::FieldId, Vec<(InstrId, InstrId)>)> {
        let mut map: std::collections::BTreeMap<nadroid_ir::FieldId, Vec<(InstrId, InstrId)>> =
            std::collections::BTreeMap::new();
        for w in self.survivors() {
            let e = map.entry(w.field).or_default();
            if !e.contains(&w.pair()) {
                e.push(w.pair());
            }
        }
        map.into_iter().collect()
    }

    /// Run the no-sleep energy-bug client (§9) over the same analysis
    /// results: wake-lock acquires with no release ordered after them.
    #[must_use]
    pub fn no_sleep_warnings(&self) -> Vec<nadroid_filters::nosleep::NoSleepWarning> {
        let filters = self.filters();
        nadroid_filters::nosleep::detect_no_sleep(self.program, &self.threads, &self.pts, &filters)
    }

    /// Render surviving warnings for the programmer, ranked by the §7
    /// hypotheses (PC- and NT-involved pairs first).
    #[must_use]
    pub fn rendered_survivors(&self) -> Vec<RenderedWarning> {
        let mut out: Vec<RenderedWarning> = self
            .survivors()
            .into_iter()
            .map(|w| render_warning(self.program, &self.threads, w))
            .collect();
        out.sort_by_key(|r| {
            (
                rank_key(r.pair_type),
                r.use_site.clone(),
                r.free_site.clone(),
            )
        });
        out.dedup();
        out
    }
}

/// Outcome of dynamically validating all survivors.
#[derive(Debug, Clone)]
pub struct ValidationResult {
    /// Warnings with an NPE witness (true harmful UAFs).
    pub confirmed: Vec<(UafWarning, Witness)>,
    /// Warnings without a witness, with their §8.5 cause.
    pub false_positives: Vec<(UafWarning, FpCause)>,
}

impl ValidationResult {
    /// Count of confirmed harmful pairs.
    #[must_use]
    pub fn harmful(&self) -> usize {
        self.confirmed.len()
    }

    /// Distribution of false positives over §8.5 causes.
    #[must_use]
    pub fn fp_histogram(&self) -> Vec<(FpCause, usize)> {
        FpCause::all()
            .iter()
            .map(|&c| {
                (
                    c,
                    self.false_positives.iter().filter(|(_, x)| *x == c).count(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;

    const FIG1A: &str = r#"
        app Fig1a
        activity Console {
            field bound: Console
            cb onCreate { bind this }
            cb onServiceConnected { bound = new Console }
            cb onServiceDisconnected { bound = null }
            cb onCreateContextMenu { use bound }
        }
    "#;

    #[test]
    fn pipeline_detects_and_survives_fig1a() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let s = a.summary();
        assert!(s.potential >= 1);
        assert_eq!(s.after_unsound, 1);
        let types = a.survivor_types();
        assert_eq!(types, vec![(PairType::EcPc, 1)]);
    }

    #[test]
    fn validation_confirms_fig1a() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let v = a.validate_survivors(ExploreConfig::default());
        assert_eq!(v.harmful(), 1);
        assert!(v.false_positives.is_empty());
    }

    #[test]
    fn filtered_program_reports_zero() {
        let p = parse_program(
            r#"
            app Clean
            activity M {
                field f: M
                cb onClick { if f != null { use f } }
                cb onLongClick { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let s = a.summary();
        assert!(s.potential >= 1, "detected before filtering");
        assert_eq!(s.after_sound, 0, "IG prunes it");
    }

    #[test]
    fn fp_taxonomy_flags_path_insensitivity() {
        let p = parse_program(
            r#"
            app Fp
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick {
                    if ? { } else { use f }
                }
                cb onLongClick {
                    if ? { f = null  f = new M } else { }
                }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let v = a.validate_survivors(ExploreConfig::default());
        // The free is immediately followed by a re-allocation on the same
        // path, so no NPE is reachable; the taxonomy blames the opaque
        // branches.
        assert_eq!(v.harmful(), 0);
        assert!(!v.false_positives.is_empty());
        assert!(v
            .false_positives
            .iter()
            .all(|(_, c)| *c == FpCause::PathInsensitivity));
    }

    // Figure 1a with a dialog listener gated by a show/dismiss pair:
    // the warning survives every §6 filter, but the refuter proves the
    // onShow callback can never be delivered after onStop's dismiss.
    const DIALOG_DISMISS: &str = r#"
        app Dlg
        activity Main {
            field f: Main
            field dlg: Dlg
            cb onCreate {
                dlg = new Dlg
                show dlg
                f = new Main
            }
            cb onStop { dismiss dlg }
            cb onDestroy { f = null }
        }
        dialog Dlg in Main {
            cb onShow { use outer.f }
        }
    "#;

    #[test]
    fn refutation_prunes_the_disabled_dialog_warning() {
        let p = parse_program(DIALOG_DISMISS).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let s = a.summary();
        assert_eq!(s.after_unsound, 1, "every §6 filter keeps it");
        assert_eq!(s.refuted, 1, "the refuter proves it infeasible");
        assert_eq!(s.after_refutation, 0);
        assert!(a.survivors().is_empty(), "reported set is post-refutation");
        assert_eq!(a.refutations().len(), 1);
        let (w, r) = &a.refutations()[0];
        assert!(a.refutation_of(w).is_some());
        assert!(!r.chain.is_empty(), "contradiction chain recorded");
    }

    #[test]
    fn refutation_can_be_disabled() {
        let p = parse_program(DIALOG_DISMISS).unwrap();
        let cfg = AnalysisConfig {
            refutation: false,
            ..Default::default()
        };
        let a = analyze(&p, &cfg);
        let s = a.summary();
        assert_eq!(s.refuted, 0);
        assert_eq!(s.after_refutation, s.after_unsound);
        assert_eq!(a.survivors().len(), 1, "the warning stands unrefuted");
    }

    #[test]
    fn refutation_never_touches_summarized_api_free_programs() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let s = a.summary();
        assert_eq!(s.refuted, 0, "no summarized enable/disable API in play");
        assert_eq!(s.after_refutation, s.after_unsound);
    }

    #[test]
    fn timings_are_recorded() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        assert!(a.timings().total() > Duration::ZERO);
    }

    #[test]
    fn sound_only_config() {
        let p = parse_program(FIG1A).unwrap();
        let cfg = AnalysisConfig {
            unsound_filters: Vec::new(),
            ..Default::default()
        };
        let a = analyze(&p, &cfg);
        assert_eq!(a.summary().after_sound, a.summary().after_unsound);
    }

    #[test]
    fn survivors_group_by_field() {
        let p = parse_program(
            r#"
            app G
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onLongClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let grouped = a.survivors_by_field();
        assert_eq!(grouped.len(), 1, "one racy field");
        assert_eq!(grouped[0].1.len(), 2, "two distinct use sites under it");
    }

    #[test]
    fn ranked_rendering_dedups_pairs() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let rendered = a.rendered_survivors();
        assert_eq!(rendered.len(), 1);
        assert!(rendered[0].use_lineage.starts_with("main > "));
        assert_eq!(rendered[0].pair_type, PairType::EcPc);
        assert!(rendered[0].field.contains("bound"));
    }
}
