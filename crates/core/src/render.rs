//! Plain-text rendering of a complete analysis report — the artifact a
//! programmer would read (§7): summary, ranked surviving warnings with
//! lineages, filter attribution, and (optionally) dynamic validation.

use crate::report::rank_key;
use crate::{Analysis, ValidationResult};
use nadroid_filters::FilterKind;
use std::fmt::Write as _;

/// Render the full report for an analysis.
#[must_use]
pub fn render_report(analysis: &Analysis<'_>, validation: Option<&ValidationResult>) -> String {
    let mut out = String::new();
    let p = analysis.program();
    let s = analysis.summary();
    let _ = writeln!(out, "nAdroid report for `{}`", p.name());
    let _ = writeln!(
        out,
        "  {} LOC | {} entry callbacks | {} posted callbacks | {} threads",
        s.loc, s.ec, s.pc, s.threads
    );
    if s.refuted == 0 {
        let _ = writeln!(
            out,
            "  {} potential UAF pairs -> {} after sound filters -> {} reported",
            s.potential, s.after_sound, s.after_unsound
        );
    } else {
        let _ = writeln!(
            out,
            "  {} potential UAF pairs -> {} after sound filters -> {} after unsound \
             filters -> {} refuted -> {} reported",
            s.potential, s.after_sound, s.after_unsound, s.refuted, s.after_refutation
        );
    }
    out.push('\n');

    // Filter attribution.
    let mut counts: Vec<(FilterKind, usize)> = Vec::new();
    for outcome in analysis
        .sound_outcomes()
        .iter()
        .chain(analysis.unsound_outcomes())
    {
        if let Some(f) = outcome.pruned_by {
            match counts.iter_mut().find(|(k, _)| *k == f) {
                Some((_, n)) => *n += 1,
                None => counts.push((f, 1)),
            }
        }
    }
    counts.sort_by_key(|&(k, _)| FilterKind::all().iter().position(|&x| x == k));
    if !counts.is_empty() {
        let _ = writeln!(out, "pruned warnings by filter (warning granularity):");
        for (k, n) in counts {
            let _ = writeln!(
                out,
                "  {k:<4} {n:>5}  [{}]",
                if k.is_sound() { "sound" } else { "unsound" }
            );
        }
        out.push('\n');
    }

    // Ranked survivors.
    let rendered = analysis.rendered_survivors();
    if rendered.is_empty() {
        let _ = writeln!(out, "no surviving warnings.");
    } else {
        let _ = writeln!(
            out,
            "{} surviving warning(s), ranked by the PC/NT hypotheses:",
            rendered.len()
        );
        let mut sorted = rendered;
        sorted.sort_by_key(|r| rank_key(r.pair_type));
        for (i, r) in sorted.iter().enumerate() {
            let _ = writeln!(out, "  #{:<3} [{}] {}", i + 1, r.pair_type, r.field);
            let _ = writeln!(out, "       use : {}", r.use_site);
            let _ = writeln!(out, "             {}", r.use_lineage);
            let _ = writeln!(out, "       free: {}", r.free_site);
            let _ = writeln!(out, "             {}", r.free_lineage);
        }
    }

    // Validation.
    if let Some(v) = validation {
        out.push('\n');
        let _ = writeln!(
            out,
            "dynamic validation: {} confirmed harmful, {} unconfirmed",
            v.harmful(),
            v.false_positives.len()
        );
        for (w, witness) in &v.confirmed {
            let _ = writeln!(
                out,
                "  CONFIRMED {} / {}: {} schedule step(s)",
                p.describe_instr(w.use_access.instr),
                p.describe_instr(w.free_access.instr),
                witness.trace.len()
            );
        }
        for (w, cause) in &v.false_positives {
            let _ = writeln!(
                out,
                "  unconfirmed {} / {} — likely cause: {cause}",
                p.describe_instr(w.use_access.instr),
                p.describe_instr(w.free_access.instr),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use nadroid_dynamic::ExploreConfig;
    use nadroid_ir::parse_program;

    #[test]
    fn report_contains_all_sections() {
        let p = parse_program(
            r#"
            app Rep
            activity M {
                field f: M
                field g: M
                cb onCreate { f = new M  g = new M }
                cb onClick { use f  if g != null { use g } }
                cb onPause { f = null  g = null }
            }
            "#,
        )
        .unwrap();
        let analysis = analyze(&p, &AnalysisConfig::default());
        let v = analysis.validate_survivors(ExploreConfig::default());
        let report = render_report(&analysis, Some(&v));
        assert!(report.contains("nAdroid report for `Rep`"), "{report}");
        assert!(report.contains("pruned warnings by filter"), "{report}");
        assert!(
            report.contains("IG"),
            "the guarded pair is attributed: {report}"
        );
        assert!(report.contains("surviving warning"), "{report}");
        assert!(report.contains("dynamic validation"), "{report}");
        assert!(report.contains("CONFIRMED"), "{report}");
    }

    #[test]
    fn clean_app_reports_no_survivors() {
        let p = parse_program("app Clean\nactivity M { cb onClick { } }").unwrap();
        let analysis = analyze(&p, &AnalysisConfig::default());
        let report = render_report(&analysis, None);
        assert!(report.contains("no surviving warnings"), "{report}");
    }
}
