//! Machine-readable (JSON) report output for CI integration.
//!
//! The writer is hand-rolled (the report types are tiny and flat), so
//! the crate keeps its zero-dependency core. Output shape:
//!
//! ```json
//! {
//!   "app": "ConnectBot",
//!   "summary": { "loc": 42, "ec": 3, "pc": 3, "threads": 1,
//!                "potential": 2, "after_sound": 2, "after_unsound": 2 },
//!   "warnings": [
//!     { "fingerprint": "…", "pair_type": "PC-PC", "field": "…",
//!       "use_site": "…", "free_site": "…",
//!       "use_lineage": "…", "free_lineage": "…" }
//!   ]
//! }
//! ```

use crate::report::RenderedWarning;
use crate::{Analysis, PhaseTimings};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal. Public because the serve
/// layer encodes its wire protocol with the same conventions as the
/// report writers in this module.
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. The workspace's documents (run reports,
/// provenance files, the `nadroid-serve/1` wire protocol) are all small
/// and tree-shaped, so a boxed enum with linear object lookup is
/// entirely adequate — and keeps the crate dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (truncating), if this
    /// is a non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict on structure (balanced, single
/// top-level value) but tolerant of surrounding whitespace.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first malformed
/// construct.
pub fn parse_json(src: &str) -> Result<JsonValue, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(src, bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(src, bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            src[start..*pos]
                .parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = src
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are not produced by this workspace's
                        // writers; map them to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // char boundaries are sound).
                let c = src[*pos..].chars().next().expect("in-bounds char");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// A stable identity for a warning across runs of the same model:
/// field plus both site descriptions (instruction ids are stable for an
/// unchanged program; the descriptions stay readable in baselines).
#[must_use]
pub fn fingerprint(w: &RenderedWarning) -> String {
    format!("{}|{}|{}|{}", w.pair_type, w.field, w.use_site, w.free_site)
}

/// Content hash of a program: `p:` plus 16 hex digits of FNV-1a 64 over
/// its printed form. Recorded in provenance documents so `explain` can
/// tell whether a `.provenance.json` sibling still describes the source
/// it sits next to — comparing content, not mtimes.
#[must_use]
pub fn program_hash(program: &nadroid_ir::Program) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in nadroid_ir::print_program(program).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("p:{h:016x}")
}

/// Content hash of a warning population: `wp:` plus 16 hex digits of
/// FNV-1a 64 over the *sorted* warning ids, newline-joined — so the
/// digest is independent of report order, thread count, and rerun
/// interleavings (warning ids already are). The figure5 driver prints
/// one per app and the run ledger records them, which is what lets
/// `nadroid perf gate` catch a silently changed warning population
/// without storing every id forever.
#[must_use]
pub fn warning_population_digest<S: AsRef<str>>(ids: &[S]) -> String {
    let mut sorted: Vec<&str> = ids.iter().map(AsRef::as_ref).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in sorted {
        for b in id.bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("wp:{h:016x}")
}

/// Render the analysis as a JSON document.
#[must_use]
pub fn render_json(analysis: &Analysis<'_>) -> String {
    let s = analysis.summary();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", esc(analysis.program().name()));
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"loc\": {}, \"ec\": {}, \"pc\": {}, \"threads\": {}, \
         \"potential\": {}, \"after_sound\": {}, \"after_unsound\": {}, \
         \"refuted\": {}, \"after_refutation\": {} }},",
        s.loc,
        s.ec,
        s.pc,
        s.threads,
        s.potential,
        s.after_sound,
        s.after_unsound,
        s.refuted,
        s.after_refutation
    );
    out.push_str("  \"warnings\": [");
    let warnings = analysis.rendered_survivors();
    for (i, w) in warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { ");
        let _ = write!(out, "\"fingerprint\": \"{}\", ", esc(&fingerprint(w)));
        let _ = write!(out, "\"pair_type\": \"{}\", ", w.pair_type);
        let _ = write!(out, "\"field\": \"{}\", ", esc(&w.field));
        let _ = write!(out, "\"use_site\": \"{}\", ", esc(&w.use_site));
        let _ = write!(out, "\"free_site\": \"{}\", ", esc(&w.free_site));
        let _ = write!(out, "\"use_lineage\": \"{}\", ", esc(&w.use_lineage));
        let _ = write!(out, "\"free_lineage\": \"{}\"", esc(&w.free_lineage));
        out.push_str(" }");
    }
    if warnings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Render phase timings as a JSON object (seconds, six decimals) — the
/// single encoder shared by the CLI run-report and the bench drivers'
/// `BENCH_timing.json`, so the two files always agree on field names:
/// `modeling`, `hb`, `detection` with its `pointsto`/`escape`/`detect`
/// sub-phases, `filtering`, and `total`.
#[must_use]
pub fn phase_timings_json(t: &PhaseTimings, indent: &str) -> String {
    let s = |d: std::time::Duration| format!("{:.6}", d.as_secs_f64());
    format!(
        "{{\n{indent}  \"modeling\": {},\n{indent}  \"hb\": {},\n\
         {indent}  \"detection\": {},\n\
         {indent}  \"pointsto\": {},\n{indent}  \"escape\": {},\n\
         {indent}  \"detect\": {},\n{indent}  \"filtering\": {},\n\
         {indent}  \"total\": {}\n{indent}}}",
        s(t.modeling),
        s(t.hb),
        s(t.detection),
        s(t.pointsto),
        s(t.escape),
        s(t.detect),
        s(t.filtering),
        s(t.total())
    )
}

/// Render the full run-report JSON: the app summary, the phase timings,
/// and everything the recorder captured (wall/busy seconds, counters —
/// including the per-filter `filter.<NAME>.examined`/`.killed` Figure 5
/// inputs — gauges, and span aggregates).
#[must_use]
pub fn render_run_report(analysis: &Analysis<'_>, recorder: &nadroid_obs::Recorder) -> String {
    let s = analysis.summary();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", esc(analysis.program().name()));
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"loc\": {}, \"ec\": {}, \"pc\": {}, \"threads\": {}, \
         \"potential\": {}, \"after_sound\": {}, \"after_unsound\": {}, \
         \"refuted\": {}, \"after_refutation\": {} }},",
        s.loc,
        s.ec,
        s.pc,
        s.threads,
        s.potential,
        s.after_sound,
        s.after_unsound,
        s.refuted,
        s.after_refutation
    );
    let _ = writeln!(
        out,
        "  \"phase_secs\": {},",
        phase_timings_json(analysis.timings(), "  ")
    );
    out.push_str(&recorder.report_fields("  "));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use nadroid_ir::parse_program;

    #[test]
    fn json_contains_summary_and_warnings() {
        let p = parse_program(
            r#"
            app J
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let json = render_json(&a);
        assert!(json.contains("\"app\": \"J\""), "{json}");
        assert!(json.contains("\"after_unsound\": 1"), "{json}");
        assert!(json.contains("\"pair_type\": \"EC-EC\""), "{json}");
        assert!(json.contains("\"fingerprint\""), "{json}");
        // Shallow well-formedness: balanced braces/brackets, no raw newline
        // inside strings.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn parser_handles_nesting_numbers_and_escapes() {
        let v = parse_json(
            r#"{ "a": [1, -2.5, 1e3], "s": "x\n\"y\"", "t": true, "n": null, "o": {} }"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("o"), Some(&JsonValue::Obj(Vec::new())));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1}";
        let doc = format!("{{ \"k\": \"{}\" }}", esc(original));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parser_reads_this_crates_own_reports() {
        let p = parse_program(
            r#"
            app P
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let v = parse_json(&render_json(&a)).unwrap();
        assert_eq!(v.get("app").unwrap().as_str(), Some("P"));
        assert!(v.get("summary").unwrap().get("potential").unwrap().as_u64().unwrap() >= 1);
        let prov = parse_json(&crate::render_provenance_json(&a)).unwrap();
        assert_eq!(
            prov.get("schema").unwrap().as_str(),
            Some("nadroid-provenance/4")
        );
        assert_eq!(
            prov.get("program_hash").unwrap().as_str(),
            Some(program_hash(&p).as_str())
        );
        assert!(!prov.get("warnings").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn population_digest_is_order_invariant_and_content_sensitive() {
        let a = warning_population_digest(&["w:0000000000000001", "w:0000000000000002"]);
        let b = warning_population_digest(&["w:0000000000000002", "w:0000000000000001"]);
        assert_eq!(a, b, "sorted before hashing");
        assert!(a.starts_with("wp:") && a.len() == 19, "{a}");
        let c = warning_population_digest(&["w:0000000000000001", "w:0000000000000003"]);
        assert_ne!(a, c, "a changed id changes the digest");
        // The separator keeps concatenation ambiguity out: {"ab"} != {"a","b"}.
        assert_ne!(
            warning_population_digest(&["ab"]),
            warning_population_digest(&["a", "b"])
        );
        let empty: [&str; 0] = [];
        assert_eq!(warning_population_digest(&empty).len(), 19);
    }

    #[test]
    fn phase_timings_encode_all_fields_balanced() {
        let p = parse_program(
            r#"
            app T
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let json = phase_timings_json(a.timings(), "");
        for key in ["modeling", "hb", "detection", "pointsto", "escape", "detect", "filtering", "total"] {
            assert!(json.contains(&format!("\"{key}\": ")), "{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn run_report_embeds_summary_timings_and_metrics() {
        let p = parse_program(
            r#"
            app R
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let rec = nadroid_obs::Recorder::new();
        let a = {
            let _g = rec.install();
            analyze(&p, &AnalysisConfig::default())
        };
        let report = render_run_report(&a, &rec);
        assert!(report.contains("\"app\": \"R\""), "{report}");
        assert!(report.contains("\"phase_secs\""), "{report}");
        assert!(report.contains("\"filter.MHB.examined\""), "{report}");
        assert!(report.contains("\"detector.racy_pairs\""), "{report}");
        assert!(report.contains("\"wall_secs\""), "{report}");
        assert_eq!(report.matches('{').count(), report.matches('}').count());
        assert_eq!(report.matches('[').count(), report.matches(']').count());
    }

    #[test]
    fn fingerprints_are_stable_across_runs() {
        let src = r#"
            app S
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(src).unwrap();
        let a1 = analyze(&p1, &AnalysisConfig::default());
        let a2 = analyze(&p2, &AnalysisConfig::default());
        let f1: Vec<String> = a1.rendered_survivors().iter().map(fingerprint).collect();
        let f2: Vec<String> = a2.rendered_survivors().iter().map(fingerprint).collect();
        assert_eq!(f1, f2);
    }
}
