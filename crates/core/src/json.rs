//! Machine-readable (JSON) report output for CI integration.
//!
//! The writer is hand-rolled (the report types are tiny and flat), so
//! the crate keeps its zero-dependency core. Output shape:
//!
//! ```json
//! {
//!   "app": "ConnectBot",
//!   "summary": { "loc": 42, "ec": 3, "pc": 3, "threads": 1,
//!                "potential": 2, "after_sound": 2, "after_unsound": 2 },
//!   "warnings": [
//!     { "fingerprint": "…", "pair_type": "PC-PC", "field": "…",
//!       "use_site": "…", "free_site": "…",
//!       "use_lineage": "…", "free_lineage": "…" }
//!   ]
//! }
//! ```

use crate::report::RenderedWarning;
use crate::{Analysis, PhaseTimings};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A stable identity for a warning across runs of the same model:
/// field plus both site descriptions (instruction ids are stable for an
/// unchanged program; the descriptions stay readable in baselines).
#[must_use]
pub fn fingerprint(w: &RenderedWarning) -> String {
    format!("{}|{}|{}|{}", w.pair_type, w.field, w.use_site, w.free_site)
}

/// Render the analysis as a JSON document.
#[must_use]
pub fn render_json(analysis: &Analysis<'_>) -> String {
    let s = analysis.summary();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", esc(analysis.program().name()));
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"loc\": {}, \"ec\": {}, \"pc\": {}, \"threads\": {}, \
         \"potential\": {}, \"after_sound\": {}, \"after_unsound\": {} }},",
        s.loc, s.ec, s.pc, s.threads, s.potential, s.after_sound, s.after_unsound
    );
    out.push_str("  \"warnings\": [");
    let warnings = analysis.rendered_survivors();
    for (i, w) in warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { ");
        let _ = write!(out, "\"fingerprint\": \"{}\", ", esc(&fingerprint(w)));
        let _ = write!(out, "\"pair_type\": \"{}\", ", w.pair_type);
        let _ = write!(out, "\"field\": \"{}\", ", esc(&w.field));
        let _ = write!(out, "\"use_site\": \"{}\", ", esc(&w.use_site));
        let _ = write!(out, "\"free_site\": \"{}\", ", esc(&w.free_site));
        let _ = write!(out, "\"use_lineage\": \"{}\", ", esc(&w.use_lineage));
        let _ = write!(out, "\"free_lineage\": \"{}\"", esc(&w.free_lineage));
        out.push_str(" }");
    }
    if warnings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Render phase timings as a JSON object (seconds, six decimals) — the
/// single encoder shared by the CLI run-report and the bench drivers'
/// `BENCH_timing.json`, so the two files always agree on field names:
/// `modeling`, `detection` with its `pointsto`/`escape`/`detect`
/// sub-phases, `filtering`, and `total`.
#[must_use]
pub fn phase_timings_json(t: &PhaseTimings, indent: &str) -> String {
    let s = |d: std::time::Duration| format!("{:.6}", d.as_secs_f64());
    format!(
        "{{\n{indent}  \"modeling\": {},\n{indent}  \"detection\": {},\n\
         {indent}  \"pointsto\": {},\n{indent}  \"escape\": {},\n\
         {indent}  \"detect\": {},\n{indent}  \"filtering\": {},\n\
         {indent}  \"total\": {}\n{indent}}}",
        s(t.modeling),
        s(t.detection),
        s(t.pointsto),
        s(t.escape),
        s(t.detect),
        s(t.filtering),
        s(t.total())
    )
}

/// Render the full run-report JSON: the app summary, the phase timings,
/// and everything the recorder captured (wall/busy seconds, counters —
/// including the per-filter `filter.<NAME>.examined`/`.killed` Figure 5
/// inputs — gauges, and span aggregates).
#[must_use]
pub fn render_run_report(analysis: &Analysis<'_>, recorder: &nadroid_obs::Recorder) -> String {
    let s = analysis.summary();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"app\": \"{}\",", esc(analysis.program().name()));
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"loc\": {}, \"ec\": {}, \"pc\": {}, \"threads\": {}, \
         \"potential\": {}, \"after_sound\": {}, \"after_unsound\": {} }},",
        s.loc, s.ec, s.pc, s.threads, s.potential, s.after_sound, s.after_unsound
    );
    let _ = writeln!(
        out,
        "  \"phase_secs\": {},",
        phase_timings_json(analysis.timings(), "  ")
    );
    out.push_str(&recorder.report_fields("  "));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use nadroid_ir::parse_program;

    #[test]
    fn json_contains_summary_and_warnings() {
        let p = parse_program(
            r#"
            app J
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let json = render_json(&a);
        assert!(json.contains("\"app\": \"J\""), "{json}");
        assert!(json.contains("\"after_unsound\": 1"), "{json}");
        assert!(json.contains("\"pair_type\": \"EC-EC\""), "{json}");
        assert!(json.contains("\"fingerprint\""), "{json}");
        // Shallow well-formedness: balanced braces/brackets, no raw newline
        // inside strings.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn phase_timings_encode_all_fields_balanced() {
        let p = parse_program(
            r#"
            app T
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let json = phase_timings_json(a.timings(), "");
        for key in ["modeling", "detection", "pointsto", "escape", "detect", "filtering", "total"] {
            assert!(json.contains(&format!("\"{key}\": ")), "{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn run_report_embeds_summary_timings_and_metrics() {
        let p = parse_program(
            r#"
            app R
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let rec = nadroid_obs::Recorder::new();
        let a = {
            let _g = rec.install();
            analyze(&p, &AnalysisConfig::default())
        };
        let report = render_run_report(&a, &rec);
        assert!(report.contains("\"app\": \"R\""), "{report}");
        assert!(report.contains("\"phase_secs\""), "{report}");
        assert!(report.contains("\"filter.MHB.examined\""), "{report}");
        assert!(report.contains("\"detector.racy_pairs\""), "{report}");
        assert!(report.contains("\"wall_secs\""), "{report}");
        assert_eq!(report.matches('{').count(), report.matches('}').count());
        assert_eq!(report.matches('[').count(), report.matches(']').count());
    }

    #[test]
    fn fingerprints_are_stable_across_runs() {
        let src = r#"
            app S
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
        "#;
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(src).unwrap();
        let a1 = analyze(&p1, &AnalysisConfig::default());
        let a2 = analyze(&p2, &AnalysisConfig::default());
        let f1: Vec<String> = a1.rendered_survivors().iter().map(fingerprint).collect();
        let f2: Vec<String> = a2.rendered_survivors().iter().map(fingerprint).collect();
        assert_eq!(f1, f2);
    }
}
