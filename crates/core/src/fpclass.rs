//! The §8.5 false-positive taxonomy.
//!
//! Surviving warnings that cannot be confirmed harmful fall into four
//! buckets in the paper, all inherent limitations of static analysis
//! rather than of the happens-before filters:
//!
//! - **path insensitivity**: a flag-guarded path makes the pair
//!   infeasible;
//! - **points-to imprecision**: merged abstract objects that are distinct
//!   at runtime;
//! - **not reachable**: a component no intent ever reaches;
//! - **missing happens-before**: UI enable/disable semantics the analysis
//!   does not model.

use nadroid_detector::UafWarning;
use nadroid_ir::{ClassId, Program};
use nadroid_pointsto::PointsTo;
use std::fmt;

/// §8.5 false-positive cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FpCause {
    /// One access sits under an opaque (flag) branch.
    PathInsensitivity,
    /// The accesses' base points-to sets are imprecise (non-singleton).
    PointsTo,
    /// An endpoint lives in a component unreachable from the manifest.
    NotReachable,
    /// None of the above: a happens-before order the analysis misses.
    MissingHappensBefore,
}

impl FpCause {
    /// All causes in Table 1 column order.
    #[must_use]
    pub fn all() -> &'static [FpCause] {
        &[
            FpCause::PathInsensitivity,
            FpCause::PointsTo,
            FpCause::NotReachable,
            FpCause::MissingHappensBefore,
        ]
    }
}

impl fmt::Display for FpCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FpCause::PathInsensitivity => "path-insens.",
            FpCause::PointsTo => "points-to",
            FpCause::NotReachable => "not-reach.",
            FpCause::MissingHappensBefore => "missing-HB",
        })
    }
}

/// Classify a surviving-but-unconfirmed warning into its most likely
/// false-positive cause, mirroring the paper's manual inspection order:
/// path insensitivity first (the most common source), then points-to,
/// then reachability, then missing HB.
#[must_use]
pub fn classify_fp(program: &Program, pts: &PointsTo, w: &UafWarning) -> FpCause {
    if w.use_access.ctx.opaque_depth > 0 || w.free_access.ctx.opaque_depth > 0 {
        return FpCause::PathInsensitivity;
    }
    let use_pts = pts.pts(w.use_access.method, w.use_access.base);
    let free_pts = pts.pts(w.free_access.method, w.free_access.base);
    if use_pts.len() > 1 || free_pts.len() > 1 {
        return FpCause::PointsTo;
    }
    let use_comp = program.outermost_class(program.method(w.use_access.method).owner());
    let free_comp = program.outermost_class(program.method(w.free_access.method).owner());
    if !component_reachable(program, use_comp) || !component_reachable(program, free_comp) {
        return FpCause::NotReachable;
    }
    FpCause::MissingHappensBefore
}

/// Whether a component is reachable from the manifest (delegates to
/// [`Program::component_reachable`]; kept here for API continuity).
#[must_use]
pub fn component_reachable(program: &Program, component: ClassId) -> bool {
    program.component_reachable(component)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;

    #[test]
    fn reachability_via_manifest_and_references() {
        let p = parse_program(
            r#"
            app R
            activity Main { cb onCreate { t1 = static Second } }
            activity Second { }
            activity Orphan { }
            manifest { main Main }
            "#,
        )
        .unwrap();
        let main = p.class_by_name("Main").unwrap();
        let second = p.class_by_name("Second").unwrap();
        let orphan = p.class_by_name("Orphan").unwrap();
        assert!(component_reachable(&p, main));
        assert!(component_reachable(&p, second), "statically referenced");
        assert!(!component_reachable(&p, orphan));
    }

    #[test]
    fn no_manifest_means_everything_reachable() {
        let p = parse_program("app R\nactivity A { }").unwrap();
        let a = p.class_by_name("A").unwrap();
        assert!(component_reachable(&p, a));
    }
}
