//! §7 warning classification and programmer-facing reporting.
//!
//! nAdroid groups surviving warnings by the origins of their use and
//! free operations: Entry Callback (EC), Posted Callback (PC), Reachable
//! Thread (RT), Non-reachable Thread (NT), and provides the callback and
//! thread lineage of each endpoint so programmers can reconstruct the
//! triggering schedule.

use nadroid_detector::UafWarning;
use nadroid_ir::Program;
use nadroid_threadify::{ThreadId, ThreadKind, ThreadModel};
use std::fmt;

/// The origin class of one warning endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// An entry callback.
    Ec,
    /// A posted callback.
    Pc,
    /// A native/task thread reachable from the other endpoint's callback.
    Rt,
    /// A native/task thread not reachable from the other endpoint.
    Nt,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Endpoint::Ec => "EC",
            Endpoint::Pc => "PC",
            Endpoint::Rt => "RT",
            Endpoint::Nt => "NT",
        })
    }
}

/// The §7 / Table 1 type of a warning pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PairType {
    /// Both endpoints are entry callbacks.
    EcEc,
    /// An entry callback races a posted callback.
    EcPc,
    /// Both endpoints are posted callbacks.
    PcPc,
    /// A callback races a thread it (transitively) created.
    CRt,
    /// A callback races an unrelated thread.
    CNt,
    /// Both endpoints are threads (normally removed by the TT filter).
    TT,
}

impl PairType {
    /// All pair types in Table 1 column order.
    #[must_use]
    pub fn all() -> &'static [PairType] {
        &[
            PairType::EcEc,
            PairType::EcPc,
            PairType::PcPc,
            PairType::CRt,
            PairType::CNt,
            PairType::TT,
        ]
    }
}

impl fmt::Display for PairType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PairType::EcEc => "EC-EC",
            PairType::EcPc => "EC-PC",
            PairType::PcPc => "PC-PC",
            PairType::CRt => "C-RT",
            PairType::CNt => "C-NT",
            PairType::TT => "T-T",
        })
    }
}

/// Classify one endpoint relative to the other (§7: thread reachability
/// is transitive across thread creation and event posting, i.e. lineage).
#[must_use]
pub fn classify_endpoint(threads: &ThreadModel, this: ThreadId, other: ThreadId) -> Endpoint {
    let t = threads.thread(this);
    match t.kind() {
        ThreadKind::Callback(k) => match k.class() {
            Some(nadroid_android::CallbackClass::Entry) => Endpoint::Ec,
            _ => Endpoint::Pc,
        },
        ThreadKind::TaskBody | ThreadKind::Native => {
            if threads.is_ancestor(other, this) {
                Endpoint::Rt
            } else {
                Endpoint::Nt
            }
        }
        ThreadKind::DummyMain => Endpoint::Ec,
    }
}

/// Classify a warning into its Table 1 pair type.
#[must_use]
pub fn classify_pair(threads: &ThreadModel, w: &UafWarning) -> PairType {
    let a = classify_endpoint(threads, w.use_thread, w.free_thread);
    let b = classify_endpoint(threads, w.free_thread, w.use_thread);
    use Endpoint::{Ec, Nt, Pc, Rt};
    match (a, b) {
        (Ec, Ec) => PairType::EcEc,
        (Ec, Pc) | (Pc, Ec) => PairType::EcPc,
        (Pc, Pc) => PairType::PcPc,
        (Rt | Nt, Rt | Nt) => PairType::TT,
        (Rt, _) | (_, Rt) => PairType::CRt,
        (Nt, _) | (_, Nt) => PairType::CNt,
    }
}

/// A rendered warning with everything §7 gives the programmer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedWarning {
    /// The racy field, as `Class.field`.
    pub field: String,
    /// Location of the use, as `Class.method#instr`.
    pub use_site: String,
    /// Location of the free.
    pub free_site: String,
    /// Pair type.
    pub pair_type: PairType,
    /// Lineage of the use's thread (`main > Main.onClick > R.run`).
    pub use_lineage: String,
    /// Lineage of the free's thread.
    pub free_lineage: String,
}

/// Render a warning for the report.
#[must_use]
pub fn render_warning(program: &Program, threads: &ThreadModel, w: &UafWarning) -> RenderedWarning {
    let field = w.field;
    let owner = program.field(field).owner();
    RenderedWarning {
        field: format!(
            "{}.{}",
            program.class(owner).name(),
            program.field(field).name()
        ),
        use_site: program.describe_instr(w.use_access.instr),
        free_site: program.describe_instr(w.free_access.instr),
        pair_type: classify_pair(threads, w),
        use_lineage: threads.lineage_string(program, w.use_thread),
        free_lineage: threads.lineage_string(program, w.free_thread),
    }
}

/// The two ranking hypotheses of §7: PC-involved pairs and NT-involved
/// pairs are the most likely harmful. Returns a sort key (lower = rank
/// earlier).
#[must_use]
pub fn rank_key(pair: PairType) -> u8 {
    match pair {
        PairType::CNt => 0,
        PairType::PcPc => 1,
        PairType::EcPc => 2,
        PairType::CRt => 3,
        PairType::EcEc => 4,
        PairType::TT => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_core_test_helpers::*;

    // Local helper module: build a program with one of each endpoint
    // class and check classification.
    mod nadroid_core_test_helpers {
        pub use nadroid_ir::parse_program;
    }

    #[test]
    fn endpoint_classification_covers_all_kinds() {
        let p = parse_program(
            r#"
            app E
            activity M {
                cb onClick { spawn W  post R }
                cb onPause { }
            }
            thread W in M { cb run { } }
            runnable R in M { cb run { } }
            "#,
        )
        .unwrap();
        let t = ThreadModel::build(&p);
        let click = t
            .threads()
            .find(|(_, x)| x.kind().callback_kind() == Some(nadroid_android::CallbackKind::OnClick))
            .unwrap()
            .0;
        let pause = t
            .threads()
            .find(|(_, x)| x.kind().callback_kind() == Some(nadroid_android::CallbackKind::OnPause))
            .unwrap()
            .0;
        let w = t
            .threads()
            .find(|(_, x)| x.kind() == nadroid_threadify::ThreadKind::Native)
            .unwrap()
            .0;
        let r = t
            .threads()
            .find(|(_, x)| {
                x.kind().callback_kind() == Some(nadroid_android::CallbackKind::PostedRun)
            })
            .unwrap()
            .0;
        assert_eq!(classify_endpoint(&t, click, pause), Endpoint::Ec);
        assert_eq!(classify_endpoint(&t, r, pause), Endpoint::Pc);
        // W was spawned by onClick: reachable from it, not from onPause.
        assert_eq!(classify_endpoint(&t, w, click), Endpoint::Rt);
        assert_eq!(classify_endpoint(&t, w, pause), Endpoint::Nt);
    }

    #[test]
    fn ranking_puts_cnt_and_pcpc_first() {
        let mut order: Vec<PairType> = PairType::all().to_vec();
        order.sort_by_key(|&t| rank_key(t));
        assert_eq!(order[0], PairType::CNt);
        assert_eq!(order[1], PairType::PcPc);
        assert_eq!(*order.last().unwrap(), PairType::TT);
    }

    #[test]
    fn pair_type_display_names() {
        assert_eq!(PairType::EcPc.to_string(), "EC-PC");
        assert_eq!(PairType::CNt.to_string(), "C-NT");
        assert_eq!(Endpoint::Rt.to_string(), "RT");
    }
}
