//! Warning provenance: the full derivation story of each warning.
//!
//! Each warning carries four layers of evidence:
//!
//! 1. a stable content-derived id ([`nadroid_detector::warning_id`]),
//! 2. the Datalog derivation tree of its racy-pair fact (§5 re-encoded
//!    as rules and solved with derivation recording on),
//! 3. a filter audit trail — every §6 filter that examined the warning,
//!    its verdict, and concrete evidence for it — and
//! 4. the happens-before edges the [`nadroid_hb::HbGraph`] holds between
//!    the warning's two threads (or the `mhp` fact that none exist).
//!
//! The audit is built from [`Filters::verdict`], whose `pruned` bit *is*
//! [`Filters::prunes`], so it can never disagree with the Figure 5
//! tallies the drivers report. [`render_provenance_json`] serializes
//! everything under the `nadroid-provenance/4` schema (v2 added the
//! document-level `program_hash` and the per-warning `hb` evidence; v3
//! added the optional per-warning `confirmation` block written by
//! `nadroid-confirm` — verdict, replayable witness schedule, search
//! statistics; v4 added the optional per-warning `refutation` block:
//! the sound reachability refuter's reason and full contradiction
//! chain); [`render_explain`] is the human-readable form behind
//! `nadroid explain`.
//!
//! [`Filters::verdict`]: nadroid_filters::Filters::verdict
//! [`Filters::prunes`]: nadroid_filters::Filters::prunes

use crate::json::{esc, program_hash, JsonValue};
use crate::report::{render_warning, RenderedWarning};
use crate::Analysis;
use nadroid_datalog::{Database, Derivation, RuleSet, Term};
use nadroid_detector::{derive_racy_pairs, describe_fact, warning_id, UafWarning};
use nadroid_filters::refute::{Refutation, RefutationReason};
use nadroid_filters::{FilterKind, FilterVerdict};
use nadroid_hb::HbEdgeKind;
use std::fmt::Write as _;

/// The provenance schema the current build writes. `nadroid explain`
/// prints a one-line staleness notice when a cached
/// `<app>.provenance.json` sibling carries an older (still readable)
/// schema.
pub const PROVENANCE_SCHEMA: &str = "nadroid-provenance/4";

/// One node of a derivation tree, pre-rendered in source terms (the
/// solved database is dropped once the tree is built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationNode {
    /// The fact in source terms, e.g. `useAt(Console.onClick#3, Console.bound)`.
    pub fact: String,
    /// The relation name.
    pub relation: String,
    /// The raw tuple (instruction / field / object / thread ids).
    pub tuple: Vec<u32>,
    /// The deriving rule, rendered — `None` for base (EDB) facts.
    pub rule: Option<String>,
    /// Derivations of the rule's premises, in body order.
    pub premises: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Whether this node is a base fact.
    #[must_use]
    pub fn is_base(&self) -> bool {
        self.rule.is_none()
    }
}

/// Dynamic-confirmation verdict for one warning (the `nadroid-confirm`
/// classification; see `docs/confirm.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfirmVerdict {
    /// A schedule was found that manifests the NPE at the warning's use
    /// instruction with the warning's free as the killing store; the
    /// minimized, replay-verified schedule is attached.
    Confirmed,
    /// The search budget was exhausted without a witness and without a
    /// completeness proof — the warning stays a static hypothesis.
    Unconfirmed,
    /// The bounded exploration drained the *entire* reachable state
    /// space (no budget truncation) without manifesting the pair, or a
    /// sound `mustHb` ordering between the two threads rules the
    /// interleaving out — no HB-consistent schedule reaches the use
    /// after the free within the model's bounds.
    Infeasible,
}

impl ConfirmVerdict {
    /// The stable lowercase wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Confirmed => "confirmed",
            Self::Unconfirmed => "unconfirmed",
            Self::Infeasible => "infeasible",
        }
    }

    /// Parse a wire name back; `None` for anything else.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "confirmed" => Some(Self::Confirmed),
            "unconfirmed" => Some(Self::Unconfirmed),
            "infeasible" => Some(Self::Infeasible),
            _ => None,
        }
    }
}

impl std::fmt::Display for ConfirmVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The dynamic-confirmation record attached to a warning's provenance
/// (the v3 `confirmation` block). Produced by `nadroid-confirm`;
/// [`Analysis::warning_provenances`] always leaves it `None` — static
/// results never depend on confirmation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confirmation {
    /// The classification.
    pub verdict: ConfirmVerdict,
    /// One line of evidence: which search phase decided, and why.
    pub reason: String,
    /// Interpreter states explored across all search phases.
    pub states_explored: u64,
    /// The minimized witness schedule in the `nadroid-dynamic` schedule
    /// codec, present iff `verdict == Confirmed`. Replaying it on the
    /// same program reproduces the NPE at the warning's use site.
    pub schedule: Option<String>,
    /// The NPE site in source terms (`Class.method#idx`), present iff
    /// `verdict == Confirmed`.
    pub npe_at: Option<String>,
}

/// The complete provenance of one warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarningProvenance {
    /// Stable content-derived id (`w:` + 16 hex digits).
    pub id: String,
    /// The §7 rendering (field, sites, pair type, lineages).
    pub rendered: RenderedWarning,
    /// Whether the warning survived the configured filter pipeline.
    pub survived: bool,
    /// The first filter (pipeline order, sound before unsound) that
    /// pruned it, if any.
    pub pruned_by: Option<FilterKind>,
    /// Verdict and evidence of every filter that examined the warning:
    /// the configured sound filters always; the unsound filters only if
    /// the warning survived the sound pass (mirroring the pipeline).
    pub audit: Vec<FilterVerdict>,
    /// Happens-before evidence between the warning's two threads: every
    /// direct [`nadroid_hb::HbGraph`] edge in either direction, the
    /// `mustHb` path when one exists, or the `mhp` fact when neither
    /// direction is soundly ordered.
    pub hb: Vec<String>,
    /// Derivation tree of the warning's `racyPair` fact.
    pub derivation: Option<DerivationNode>,
    /// The sound reachability refuter's verdict, when it refuted this
    /// warning after it survived every configured filter: the reason
    /// plus the full contradiction chain (the v4 `refutation` block).
    pub refutation: Option<Refutation>,
    /// Dynamic-confirmation verdict, once `nadroid-confirm` has run.
    /// `None` from a fresh [`Analysis::warning_provenances`] — static
    /// analysis never fills it in.
    pub confirmation: Option<Confirmation>,
}

/// Render a rule as `head :- body.` text with relation names and `vN`
/// variables.
fn render_rule(db: &Database, rules: &RuleSet, idx: usize) -> String {
    let rule = &rules.rules()[idx];
    let atom = |a: &nadroid_datalog::Atom| {
        let terms: Vec<String> = a
            .terms()
            .iter()
            .map(|t| match t {
                Term::Var(v) => format!("v{v}"),
                Term::Const(c) => c.to_string(),
            })
            .collect();
        format!("{}({})", db.name(a.rel()), terms.join(", "))
    };
    let body: Vec<String> = rule.body().iter().map(atom).collect();
    if body.is_empty() {
        format!("rule {idx}: {}.", atom(rule.head()))
    } else {
        format!("rule {idx}: {} :- {}.", atom(rule.head()), body.join(", "))
    }
}

impl Analysis<'_> {
    /// Build the provenance of every raw warning (pruned ones included —
    /// their audit shows *why* they were pruned).
    ///
    /// Solves the §5 racy-pair Datalog encoding with derivation recording
    /// on, so each call re-derives the trees from scratch; drivers should
    /// call it once and reuse the result.
    #[must_use]
    pub fn warning_provenances(&self) -> Vec<WarningProvenance> {
        let prov = derive_racy_pairs(
            self.program,
            &self.threads,
            &self.pts,
            &self.escape,
            self.config.detector,
        );
        let filters = self.filters();
        self.warnings
            .iter()
            .map(|w| {
                let sound: Vec<FilterVerdict> = self
                    .config
                    .sound_filters
                    .iter()
                    .map(|&k| filters.verdict(k, w))
                    .collect();
                let sound_survived = sound.iter().all(|v| !v.pruned);
                let mut audit = sound;
                if sound_survived {
                    audit.extend(
                        self.config
                            .unsound_filters
                            .iter()
                            .map(|&k| filters.verdict(k, w)),
                    );
                }
                let pruned_by = audit.iter().find(|v| v.pruned).map(|v| v.kind);
                let derivation = prov
                    .explain_warning(w)
                    .map(|d| render_derivation(self, &prov.db, &prov.rules, &d));
                WarningProvenance {
                    id: warning_id(self.program, &self.threads, w),
                    rendered: render_warning(self.program, &self.threads, w),
                    survived: pruned_by.is_none(),
                    pruned_by,
                    audit,
                    hb: hb_evidence(self, w),
                    derivation,
                    refutation: self.refutation_of(w).cloned(),
                    confirmation: None,
                }
            })
            .collect()
    }
}

fn render_derivation(
    analysis: &Analysis<'_>,
    db: &Database,
    rules: &RuleSet,
    d: &Derivation,
) -> DerivationNode {
    DerivationNode {
        fact: describe_fact(analysis.program(), analysis.threads(), db, d.rel, &d.tuple),
        relation: db.name(d.rel).to_string(),
        tuple: d.tuple.clone(),
        rule: d.rule.map(|idx| render_rule(db, rules, idx)),
        premises: d
            .premises
            .iter()
            .map(|p| render_derivation(analysis, db, rules, p))
            .collect(),
    }
}

/// Render the happens-before evidence between a warning's two threads,
/// in source terms: each direct graph edge (use→free first, then
/// free→use), then either the `mustHb` path or the `mhp` fact.
fn hb_evidence(analysis: &Analysis<'_>, w: &UafWarning) -> Vec<String> {
    let g = analysis.hb();
    let p = analysis.program();
    let t = analysis.threads();
    let lin = |id| t.lineage_string(p, id);
    let label = |kind: HbEdgeKind| match kind {
        HbEdgeKind::Cancel(api) => format!("{} via {}", kind.relation(), api.method_name()),
        HbEdgeKind::Reentry(f) => format!(
            "{} re-allocating {}.{}",
            kind.relation(),
            p.class(p.field(f).owner()).name(),
            p.field(f).name()
        ),
        k => k.relation().to_owned(),
    };
    let mut out = Vec::new();
    let mut directions = vec![(w.use_thread, w.free_thread)];
    if w.free_thread != w.use_thread {
        directions.push((w.free_thread, w.use_thread));
    }
    for (a, b) in directions {
        for e in g.edges_between(a, b) {
            out.push(format!("{}: [{}] -> [{}]", label(e.kind), lin(e.src), lin(e.dst)));
        }
        if let Some(path) = g.must_hb_path(a, b) {
            let hops: Vec<String> = path.into_iter().map(lin).collect();
            out.push(format!("mustHb: {}", hops.join(" -> ")));
        }
    }
    if g.mhp(w.use_thread, w.free_thread) {
        out.push("mhp: no sound ordering in either direction".to_owned());
    }
    out
}

/// Serialize the provenance of every warning as JSON under the
/// [`PROVENANCE_SCHEMA`] (`nadroid-provenance/4`) schema.
#[must_use]
pub fn render_provenance_json(analysis: &Analysis<'_>) -> String {
    render_provenance_json_with(analysis, &analysis.warning_provenances())
}

/// [`render_provenance_json`] over provenances the caller has already
/// computed — [`Analysis::warning_provenances`] re-derives every racy
/// pair through the Datalog engine with recording on, so callers that
/// need both the structs and the JSON should compute once.
#[must_use]
pub fn render_provenance_json_with(
    analysis: &Analysis<'_>,
    provenances: &[WarningProvenance],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{PROVENANCE_SCHEMA}\",");
    let _ = writeln!(out, "  \"app\": \"{}\",", esc(analysis.program().name()));
    let _ = writeln!(
        out,
        "  \"program_hash\": \"{}\",",
        esc(&program_hash(analysis.program()))
    );
    out.push_str("  \"warnings\": [");
    for (i, p) in provenances.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"id\": \"{}\",", esc(&p.id));
        let _ = writeln!(out, "      \"field\": \"{}\",", esc(&p.rendered.field));
        let _ = writeln!(out, "      \"use_site\": \"{}\",", esc(&p.rendered.use_site));
        let _ = writeln!(
            out,
            "      \"free_site\": \"{}\",",
            esc(&p.rendered.free_site)
        );
        let _ = writeln!(out, "      \"pair_type\": \"{}\",", p.rendered.pair_type);
        let _ = writeln!(
            out,
            "      \"use_lineage\": \"{}\",",
            esc(&p.rendered.use_lineage)
        );
        let _ = writeln!(
            out,
            "      \"free_lineage\": \"{}\",",
            esc(&p.rendered.free_lineage)
        );
        let _ = writeln!(out, "      \"survived\": {},", p.survived);
        match p.pruned_by {
            Some(k) => {
                let _ = writeln!(out, "      \"pruned_by\": \"{}\",", k.name());
            }
            None => {
                let _ = writeln!(out, "      \"pruned_by\": null,");
            }
        }
        out.push_str("      \"audit\": [");
        for (j, v) in p.audit.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{ \"filter\": \"{}\", \"pruned\": {}, \"evidence\": \"{}\" }}",
                v.kind.name(),
                v.pruned,
                esc(&v.evidence)
            );
        }
        if p.audit.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n      ],\n");
        }
        out.push_str("      \"hb\": [");
        for (j, line) in p.hb.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n        \"{}\"", esc(line));
        }
        if p.hb.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n      ],\n");
        }
        match &p.refutation {
            Some(r) => {
                out.push_str("      \"refutation\": {\n");
                let _ = writeln!(out, "        \"reason\": \"{}\",", r.reason.name());
                out.push_str("        \"chain\": [");
                for (j, step) in r.chain.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n          \"{}\"", esc(step));
                }
                if r.chain.is_empty() {
                    out.push_str("]\n");
                } else {
                    out.push_str("\n        ]\n");
                }
                out.push_str("      },\n");
            }
            None => out.push_str("      \"refutation\": null,\n"),
        }
        match &p.confirmation {
            Some(c) => {
                out.push_str("      \"confirmation\": {\n");
                let _ = writeln!(out, "        \"verdict\": \"{}\",", c.verdict);
                let _ = writeln!(out, "        \"reason\": \"{}\",", esc(&c.reason));
                let _ = writeln!(out, "        \"states_explored\": {},", c.states_explored);
                match &c.schedule {
                    Some(s) => {
                        let _ = writeln!(out, "        \"schedule\": \"{}\",", esc(s));
                    }
                    None => out.push_str("        \"schedule\": null,\n"),
                }
                match &c.npe_at {
                    Some(s) => {
                        let _ = writeln!(out, "        \"npe_at\": \"{}\"", esc(s));
                    }
                    None => out.push_str("        \"npe_at\": null\n"),
                }
                out.push_str("      },\n");
            }
            None => out.push_str("      \"confirmation\": null,\n"),
        }
        match &p.derivation {
            Some(d) => {
                out.push_str("      \"derivation\": ");
                write_derivation_json(&mut out, d, 6);
                out.push('\n');
            }
            None => out.push_str("      \"derivation\": null\n"),
        }
        out.push_str("    }");
    }
    if provenances.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn write_derivation_json(out: &mut String, d: &DerivationNode, indent: usize) {
    let pad = " ".repeat(indent);
    out.push_str("{\n");
    let _ = writeln!(out, "{pad}  \"fact\": \"{}\",", esc(&d.fact));
    let _ = writeln!(out, "{pad}  \"relation\": \"{}\",", esc(&d.relation));
    let tuple: Vec<String> = d.tuple.iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "{pad}  \"tuple\": [{}],", tuple.join(", "));
    match &d.rule {
        Some(r) => {
            let _ = writeln!(out, "{pad}  \"rule\": \"{}\",", esc(r));
        }
        None => {
            let _ = writeln!(out, "{pad}  \"rule\": null,");
        }
    }
    let _ = write!(out, "{pad}  \"premises\": [");
    for (i, prem) in d.premises.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{pad}    ");
        write_derivation_json(out, prem, indent + 4);
    }
    if d.premises.is_empty() {
        out.push_str("]\n");
    } else {
        let _ = write!(out, "\n{pad}  ]\n");
    }
    let _ = write!(out, "{pad}}}");
}

/// The provenance fields `nadroid explain` renders, decoupled from the
/// live [`Analysis`] so the same rendering serves both a fresh run and a
/// previously-exported `nadroid-provenance/2` or `/3` document (the
/// serve result cache and the CLI's provenance-file fast path).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ExplainEntry {
    id: String,
    field: String,
    use_site: String,
    use_lineage: String,
    free_site: String,
    free_lineage: String,
    pair_type: String,
    pruned_by: Option<String>,
    /// (filter name, pruned, evidence).
    audit: Vec<(String, bool, String)>,
    hb: Vec<String>,
    derivation: Option<DerivationNode>,
    /// (reason wire name, contradiction chain).
    refutation: Option<(String, Vec<String>)>,
    confirmation: Option<Confirmation>,
}

fn entry_of(p: &WarningProvenance) -> ExplainEntry {
    ExplainEntry {
        id: p.id.clone(),
        field: p.rendered.field.clone(),
        use_site: p.rendered.use_site.clone(),
        use_lineage: p.rendered.use_lineage.clone(),
        free_site: p.rendered.free_site.clone(),
        free_lineage: p.rendered.free_lineage.clone(),
        pair_type: p.rendered.pair_type.to_string(),
        pruned_by: p.pruned_by.map(|k| k.name().to_owned()),
        audit: p
            .audit
            .iter()
            .map(|v| (v.kind.name().to_owned(), v.pruned, v.evidence.clone()))
            .collect(),
        hb: p.hb.clone(),
        derivation: p.derivation.clone(),
        refutation: p
            .refutation
            .as_ref()
            .map(|r| (r.reason.name().to_owned(), r.chain.clone())),
        confirmation: p.confirmation.clone(),
    }
}

fn render_entries(entries: &[ExplainEntry], id: Option<&str>) -> String {
    let selected: Vec<&ExplainEntry> = match id {
        Some(want) => entries.iter().filter(|e| e.id == want).collect(),
        None => entries.iter().collect(),
    };
    if selected.is_empty() {
        let mut out = match id {
            Some(want) => format!("no warning with id {want}\n"),
            None => String::from("no warnings\n"),
        };
        if !entries.is_empty() {
            out.push_str("known ids:\n");
            for e in entries {
                let _ = writeln!(out, "  {}  ({})", e.id, e.field);
            }
        }
        return out;
    }
    let mut out = String::new();
    for (i, e) in selected.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "warning {}", e.id);
        let _ = writeln!(out, "  field:  {}", e.field);
        let _ = writeln!(out, "  use:    {}  [{}]", e.use_site, e.use_lineage);
        let _ = writeln!(out, "  free:   {}  [{}]", e.free_site, e.free_lineage);
        let _ = writeln!(out, "  type:   {}", e.pair_type);
        if !e.hb.is_empty() {
            out.push_str("  ordering:\n");
            for line in &e.hb {
                let _ = writeln!(out, "    {line}");
            }
        }
        match (&e.pruned_by, &e.refutation) {
            (Some(k), _) => {
                let _ = writeln!(out, "  status: pruned by {k}");
            }
            (None, Some((reason, _))) => {
                let _ = writeln!(out, "  status: refuted ({reason})");
            }
            (None, None) => {
                let _ = writeln!(out, "  status: survived all filters");
            }
        }
        if let Some((reason, chain)) = &e.refutation {
            out.push_str("\n  refutation:\n");
            let _ = writeln!(out, "    reason: {reason}");
            for step in chain {
                let _ = writeln!(out, "    - {step}");
            }
        }
        if let Some(c) = &e.confirmation {
            out.push_str("\n  confirmation:\n");
            let _ = writeln!(out, "    verdict: {}", c.verdict);
            let _ = writeln!(out, "    reason:  {}", c.reason);
            let _ = writeln!(out, "    states:  {}", c.states_explored);
            if let Some(at) = &c.npe_at {
                let _ = writeln!(out, "    npe at:  {at}");
            }
            if let Some(s) = &c.schedule {
                out.push_str("    witness schedule:\n");
                let _ = writeln!(out, "      {s}");
            }
        }
        out.push_str("\n  derivation:\n");
        match &e.derivation {
            Some(d) => write_derivation_text(&mut out, d, 4),
            None => out.push_str("    (not recorded)\n"),
        }
        out.push_str("\n  filter audit:\n");
        for (kind, pruned, evidence) in &e.audit {
            let verdict = if *pruned { "prune" } else { "pass " };
            let _ = writeln!(out, "    {kind:4} {verdict}  {evidence}");
        }
    }
    out
}

/// Render warning provenance as text — the body of `nadroid explain`.
/// With `id = Some(..)`, only that warning; with `None`, all of them.
/// Unknown ids render a note listing the known ids.
#[must_use]
pub fn render_explain(analysis: &Analysis<'_>, id: Option<&str>) -> String {
    let entries: Vec<ExplainEntry> = analysis
        .warning_provenances()
        .iter()
        .map(entry_of)
        .collect();
    render_entries(&entries, id)
}

/// Render the `nadroid explain` text from a serialized
/// `nadroid-provenance/4` (or legacy `/2` or `/3`) document instead of
/// a live analysis — the fast path when the provenance was already computed
/// (by `analyze --provenance`, the table1 driver, `nadroid confirm`, or
/// the serve result cache).
///
/// # Errors
///
/// Returns a message when the document is not parseable JSON or does not
/// carry the `nadroid-provenance/2`, `/3`, or `/4` schema.
pub fn render_explain_from_json(doc: &str, id: Option<&str>) -> Result<String, String> {
    let v = crate::json::parse_json(doc)?;
    let schema = v.get("schema").and_then(JsonValue::as_str);
    if !matches!(
        schema,
        Some("nadroid-provenance/2" | "nadroid-provenance/3" | "nadroid-provenance/4")
    ) {
        return Err("not a nadroid-provenance/2, /3, or /4 document".into());
    }
    let warnings = v
        .get("warnings")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "provenance document has no warnings array".to_owned())?;
    let entries = warnings
        .iter()
        .map(entry_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(render_entries(&entries, id))
}

fn json_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("provenance warning missing `{key}`"))
}

fn entry_from_json(v: &JsonValue) -> Result<ExplainEntry, String> {
    let audit = v
        .get("audit")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|a| {
            Ok((
                json_str(a, "filter")?,
                a.get("pruned").and_then(JsonValue::as_bool).unwrap_or(false),
                json_str(a, "evidence")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hb = v
        .get("hb")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(JsonValue::as_str)
        .map(str::to_owned)
        .collect();
    let derivation = match v.get("derivation") {
        None | Some(JsonValue::Null) => None,
        Some(d) => Some(derivation_from_json(d)?),
    };
    let refutation = match v.get("refutation") {
        None | Some(JsonValue::Null) => None,
        Some(r) => {
            let reason = json_str(r, "reason")?;
            if RefutationReason::from_name(&reason).is_none() {
                return Err(format!("unknown refutation reason {reason:?}"));
            }
            let chain = r
                .get("chain")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(JsonValue::as_str)
                .map(str::to_owned)
                .collect();
            Some((reason, chain))
        }
    };
    let confirmation = match v.get("confirmation") {
        None | Some(JsonValue::Null) => None,
        Some(c) => Some(confirmation_from_json(c)?),
    };
    Ok(ExplainEntry {
        id: json_str(v, "id")?,
        field: json_str(v, "field")?,
        use_site: json_str(v, "use_site")?,
        use_lineage: json_str(v, "use_lineage")?,
        free_site: json_str(v, "free_site")?,
        free_lineage: json_str(v, "free_lineage")?,
        pair_type: json_str(v, "pair_type")?,
        pruned_by: v
            .get("pruned_by")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
        audit,
        hb,
        derivation,
        refutation,
        confirmation,
    })
}

fn confirmation_from_json(v: &JsonValue) -> Result<Confirmation, String> {
    let verdict = json_str(v, "verdict")?;
    Ok(Confirmation {
        verdict: ConfirmVerdict::from_str(&verdict)
            .ok_or_else(|| format!("unknown confirmation verdict {verdict:?}"))?,
        reason: json_str(v, "reason")?,
        states_explored: v
            .get("states_explored")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        schedule: v
            .get("schedule")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
        npe_at: v
            .get("npe_at")
            .and_then(JsonValue::as_str)
            .map(str::to_owned),
    })
}

fn derivation_from_json(v: &JsonValue) -> Result<DerivationNode, String> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let tuple = v
        .get("tuple")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(JsonValue::as_u64)
        .map(|n| n as u32)
        .collect();
    Ok(DerivationNode {
        fact: json_str(v, "fact")?,
        relation: json_str(v, "relation")?,
        tuple,
        rule: v.get("rule").and_then(JsonValue::as_str).map(str::to_owned),
        premises: v
            .get("premises")
            .and_then(JsonValue::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(derivation_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn write_derivation_text(out: &mut String, d: &DerivationNode, indent: usize) {
    let pad = " ".repeat(indent);
    if let Some(rule) = &d.rule {
        let _ = writeln!(out, "{pad}{}  [{rule}]", d.fact);
    } else {
        let _ = writeln!(out, "{pad}{}  (base fact)", d.fact);
    }
    for prem in &d.premises {
        write_derivation_text(out, prem, indent + 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use nadroid_ir::parse_program;

    const FIG1A: &str = r#"
        app Fig1a
        activity Console {
            field bound: Console
            cb onCreate { bind this }
            cb onServiceConnected { bound = new Console }
            cb onServiceDisconnected { bound = null }
            cb onCreateContextMenu { use bound }
        }
    "#;

    #[test]
    fn every_warning_is_explainable() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let provs = a.warning_provenances();
        assert_eq!(provs.len(), a.warnings().len());
        for wp in &provs {
            let d = wp.derivation.as_ref().expect("derivation recorded");
            assert_eq!(d.relation, "racyPair");
            assert!(d.rule.is_some(), "racyPair is derived, not EDB");
            fn leaves_are_base(n: &DerivationNode) {
                if n.premises.is_empty() {
                    assert!(n.is_base(), "leaf {} must be a base fact", n.fact);
                } else {
                    for p in &n.premises {
                        leaves_are_base(p);
                    }
                }
            }
            leaves_are_base(d);
            assert!(!wp.audit.is_empty());
        }
    }

    #[test]
    fn audit_is_consistent_with_the_pipeline_outcomes() {
        // The audit's pruned bits must reproduce the pipeline's verdicts
        // — the same accounting the Figure 5 tallies are built from.
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let provs = a.warning_provenances();
        for (wp, outcome) in provs.iter().zip(a.sound_outcomes()) {
            for v in wp
                .audit
                .iter()
                .filter(|v| a.config().sound_filters.contains(&v.kind))
            {
                assert_eq!(
                    v.pruned,
                    outcome.all_pruning.contains(&v.kind),
                    "audit and pipeline disagree on {}",
                    v.kind
                );
            }
        }
        let survivors: Vec<&WarningProvenance> = provs.iter().filter(|p| p.survived).collect();
        assert_eq!(survivors.len(), a.survivors().len());
    }

    #[test]
    fn provenance_json_is_balanced_and_carries_the_schema() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let json = render_provenance_json(&a);
        assert!(json.contains("\"schema\": \"nadroid-provenance/4\""), "{json}");
        assert!(json.contains("\"refutation\": null"), "{json}");
        assert!(json.contains("\"program_hash\": \"p:"), "{json}");
        assert!(json.contains("\"hb\": ["), "{json}");
        assert!(json.contains("\"confirmation\": null"), "{json}");
        assert!(json.contains("\"derivation\": {"), "{json}");
        assert!(json.contains("racyPair"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn explain_renders_tree_audit_and_lineage() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let text = render_explain(&a, None);
        assert!(text.contains("derivation:"), "{text}");
        assert!(text.contains("ordering:"), "{text}");
        assert!(text.contains("racyPair("), "{text}");
        assert!(text.contains("(base fact)"), "{text}");
        assert!(text.contains("filter audit:"), "{text}");
        assert!(text.contains("main > "), "{text}");
    }

    #[test]
    fn explain_from_json_matches_the_live_rendering() {
        // The provenance-file fast path (CLI cache, serve cache) must
        // render byte-identically to a fresh analysis.
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let doc = render_provenance_json(&a);
        let from_json = render_explain_from_json(&doc, None).unwrap();
        assert_eq!(from_json, render_explain(&a, None));
        let provs = a.warning_provenances();
        let id = &provs[0].id;
        assert_eq!(
            render_explain_from_json(&doc, Some(id)).unwrap(),
            render_explain(&a, Some(id))
        );
        assert!(render_explain_from_json("{}", None).is_err());
        assert!(render_explain_from_json("not json", None).is_err());
        // Legacy /2 documents (no confirmation field) still render.
        let legacy = doc.replace("nadroid-provenance/4", "nadroid-provenance/2");
        assert!(render_explain_from_json(&legacy, None).is_ok());
    }

    #[test]
    fn confirmation_round_trips_through_json_and_explain() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let mut provs = a.warning_provenances();
        provs[0].confirmation = Some(Confirmation {
            verdict: ConfirmVerdict::Confirmed,
            reason: "directed search manifested the pair".into(),
            states_explored: 42,
            schedule: Some("l0.onCreate c1 d1 l0.onCreateContextMenu".into()),
            npe_at: Some("Console.onCreateContextMenu#0".into()),
        });
        let doc = render_provenance_json_with(&a, &provs);
        assert!(doc.contains("\"verdict\": \"confirmed\""), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let text = render_explain_from_json(&doc, None).unwrap();
        assert!(text.contains("verdict: confirmed"), "{text}");
        assert!(text.contains("witness schedule:"), "{text}");
        assert!(text.contains("l0.onCreate c1 d1"), "{text}");
        assert!(text.contains("npe at:  Console.onCreateContextMenu#0"), "{text}");
        // An infeasible verdict renders without schedule lines.
        provs[0].confirmation = Some(Confirmation {
            verdict: ConfirmVerdict::Infeasible,
            reason: "state space drained without the pair".into(),
            states_explored: 7,
            schedule: None,
            npe_at: None,
        });
        let doc = render_provenance_json_with(&a, &provs);
        let text = render_explain_from_json(&doc, None).unwrap();
        assert!(text.contains("verdict: infeasible"), "{text}");
        assert!(!text.contains("witness schedule:"), "{text}");
        // Verdict names round-trip.
        for v in [
            ConfirmVerdict::Confirmed,
            ConfirmVerdict::Unconfirmed,
            ConfirmVerdict::Infeasible,
        ] {
            assert_eq!(ConfirmVerdict::from_str(v.as_str()), Some(v));
        }
        assert_eq!(ConfirmVerdict::from_str("maybe"), None);
    }

    #[test]
    fn refutation_round_trips_through_json_and_explain() {
        // A dialog listener disabled by onStop's dismiss: the warning
        // survives every filter, the refuter refutes it, and the v4
        // refutation block carries the chain through JSON and explain.
        let p = parse_program(
            r#"
            app Dlg
            activity Main {
                field f: Main
                field dlg: Dlg
                cb onCreate {
                    dlg = new Dlg
                    show dlg
                    f = new Main
                }
                cb onStop { dismiss dlg }
                cb onDestroy { f = null }
            }
            dialog Dlg in Main {
                cb onShow { use outer.f }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        assert_eq!(a.refutations().len(), 1, "the dialog warning refutes");
        let provs = a.warning_provenances();
        let refuted: Vec<&WarningProvenance> =
            provs.iter().filter(|wp| wp.refutation.is_some()).collect();
        assert_eq!(refuted.len(), 1);
        assert!(refuted[0].survived, "refutation applies to filter survivors");
        let doc = render_provenance_json_with(&a, &provs);
        assert!(doc.contains("\"refutation\": {"), "{doc}");
        assert!(doc.contains("\"reason\": \"disabled\""), "{doc}");
        assert!(doc.contains("\"chain\": ["), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let text = render_explain_from_json(&doc, None).unwrap();
        assert!(text.contains("status: refuted (disabled)"), "{text}");
        assert!(text.contains("refutation:"), "{text}");
        assert!(text.contains("reason: disabled"), "{text}");
        assert!(text.contains("once-only onCreate"), "{text}");
        assert_eq!(text, render_explain(&a, None), "fast path matches live");
        // A bogus reason is rejected rather than silently rendered.
        let bad = doc.replace("\"reason\": \"disabled\"", "\"reason\": \"vibes\"");
        assert!(render_explain_from_json(&bad, None).is_err());
    }

    #[test]
    fn explain_filters_by_id_and_reports_unknown_ids() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let provs = a.warning_provenances();
        let id = &provs[0].id;
        let text = render_explain(&a, Some(id));
        assert!(text.contains(id.as_str()), "{text}");
        let miss = render_explain(&a, Some("w:0000000000000000"));
        assert!(miss.contains("no warning with id"), "{miss}");
        assert!(miss.contains(id.as_str()), "unknown-id note lists known ids");
    }
}
