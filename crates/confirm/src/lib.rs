//! Dynamic confirmation of surviving warnings: schedule synthesis that
//! manifests static use-after-free hypotheses as concrete NPEs.
//!
//! nAdroid stops at statically-filtered warnings; §7 of the paper
//! validates them by *manually* constructing schedules. This crate
//! closes that loop automatically (the APEChecker move — Fan et al. —
//! applied to nAdroid's warnings). For each surviving warning it
//!
//! 1. derives a **directed search** from the warning's evidence: the
//!    threads of the use and the free, their spawn lineage, and the
//!    happens-before facts between them induce an [`EvidenceGuide`]
//!    that prunes the event space to the warning's components and
//!    explores free-side steps before use-side steps (the interleaving
//!    the warning claims — free first, then use — is tried first);
//! 2. falls back to **bounded full exploration** (priorities kept,
//!    pruning off) when the directed phase exhausts its budget, so no
//!    witness reachable within the model's bounds is missed; and
//! 3. classifies the warning [`ConfirmVerdict::Confirmed`] (a
//!    minimized, replay-verified witness schedule is attached),
//!    [`ConfirmVerdict::Infeasible`] (a proof that no HB-consistent
//!    interleaving reaches the use after the free — a `mustHb`
//!    ordering, an unreachable component, or a complete drain of the
//!    bounded state space), or [`ConfirmVerdict::Unconfirmed`] (budget
//!    exhausted, inconclusive).
//!
//! Verdicts are recorded in the provenance document (the
//! `nadroid-provenance/3` `confirmation` block, see
//! [`attach_confirmations`]) and reported under the `nadroid-confirm/1`
//! schema ([`render_confirm_json`]). Batch confirmation
//! ([`confirm_survivors`]) runs one search per *distinct* (use, free)
//! pair on the ambient [`nadroid_par`] thread budget and merges in pair
//! order, so verdicts, schedules, and tallies are byte-identical at any
//! thread count. Nothing in the search consults a clock or randomness.

use nadroid_core::{warning_population_digest, Analysis, Confirmation, ConfirmVerdict};
use nadroid_detector::{warning_id, UafWarning};
use nadroid_dynamic::{
    encode_schedule, explore_guided, minimize_schedule, replay, Exploration, ExploreConfig, Guide,
    Step, Witness, World,
};
use nadroid_ir::{ClassId, InstrId, MethodId, Program};
use nadroid_threadify::callback_method;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

pub use nadroid_core::{Confirmation as CoreConfirmation, ConfirmVerdict as Verdict};

/// The `nadroid-confirm/1` report schema identifier.
pub const SCHEMA: &str = "nadroid-confirm/1";

/// Search budgets for the two confirmation phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmConfig {
    /// Budget of the directed (evidence-pruned) phase. Smaller than the
    /// fallback: the pruned space is tiny when the evidence is good,
    /// and a miss costs only this budget before the full search runs.
    pub directed: ExploreConfig,
    /// Budget of the bounded fallback exploration. A drain of this
    /// search without budget truncation is the infeasibility proof.
    pub fallback: ExploreConfig,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        // Real witnesses fall out of the directed phase within a few
        // hundred states; the budgets exist to bound the *unconfirmed*
        // cost, which is paid in full for every warning that never
        // manifests. 4k + 8k keeps a full-corpus sweep interactive
        // while leaving two orders of magnitude of headroom over the
        // observed witness depths.
        ConfirmConfig {
            directed: ExploreConfig {
                max_states: 4_000,
                ..ExploreConfig::default()
            },
            fallback: ExploreConfig {
                max_states: 8_000,
                ..ExploreConfig::default()
            },
        }
    }
}

/// The evidence-derived scheduling guide for one warning: a relevance
/// set (classes and methods of the use/free threads and their spawn
/// lineage) plus step priorities that explore the claimed interleaving
/// — free before use — first.
///
/// In pruning mode only *dispatch* steps are filtered (an admitted
/// event may legitimately call through helper code, so task advancement
/// is never blocked); rejecting any event voids the completeness of an
/// exhausted search, which is why infeasibility proofs come from the
/// unpruned fallback phase alone.
pub struct EvidenceGuide<'p> {
    program: &'p Program,
    relevant_classes: HashSet<ClassId>,
    relevant_methods: HashSet<MethodId>,
    use_method: MethodId,
    free_method: MethodId,
    use_owner: ClassId,
    free_owner: ClassId,
    prune: bool,
}

impl<'p> EvidenceGuide<'p> {
    /// Build the guide from a warning's provenance evidence.
    #[must_use]
    pub fn from_warning(analysis: &Analysis<'p>, w: &UafWarning, prune: bool) -> Self {
        let program = analysis.program();
        let threads = analysis.threads();
        let mut relevant_classes = HashSet::new();
        let mut relevant_methods = HashSet::new();
        for tid in [w.use_thread, w.free_thread] {
            for anc in threads.lineage(tid) {
                let th = threads.thread(anc);
                if let Some(c) = th.class() {
                    relevant_classes.insert(c);
                    relevant_classes.insert(program.outermost_class(c));
                }
                if let Some(c) = th.component() {
                    relevant_classes.insert(c);
                }
                for &m in threads.methods_of(anc) {
                    relevant_methods.insert(m);
                    relevant_classes.insert(program.method(m).owner());
                }
            }
        }
        for m in [w.use_access.method, w.free_access.method] {
            relevant_methods.insert(m);
            relevant_classes.insert(program.method(m).owner());
        }
        EvidenceGuide {
            program,
            relevant_classes,
            relevant_methods,
            use_method: w.use_access.method,
            free_method: w.free_access.method,
            use_owner: program.method(w.use_access.method).owner(),
            free_owner: program.method(w.free_access.method).owner(),
            prune,
        }
    }

    fn class_score(&self, c: ClassId) -> i32 {
        if c == self.free_owner {
            3
        } else if c == self.use_owner {
            2
        } else if self.relevant_classes.contains(&c) {
            1
        } else {
            0
        }
    }

    fn method_score(&self, m: MethodId) -> i32 {
        if m == self.free_method {
            3
        } else if m == self.use_method {
            2
        } else if self.relevant_methods.contains(&m) {
            1
        } else {
            self.class_score(self.program.method(m).owner())
        }
    }

    fn step_score(&self, world: &World<'_>, step: &Step) -> i32 {
        use nadroid_dynamic::Event;
        match step {
            Step::Advance { task, .. } => world
                .tasks
                .get(task.0 as usize)
                .into_iter()
                .flat_map(|t| &t.frames)
                .map(|f| self.method_score(f.method))
                .max()
                .unwrap_or(0),
            Step::Dispatch(e) => match e {
                Event::Lifecycle { activity, kind } => {
                    callback_method(self.program, *activity, *kind)
                        .map_or_else(|| self.class_score(*activity), |m| self.method_score(m))
                        .max(self.class_score(*activity))
                }
                Event::Entry { method, .. } => self.method_score(*method),
                Event::DequeuePost { looper } => world
                    .posts
                    .get(&looper.0)
                    .and_then(std::collections::VecDeque::front)
                    .map_or(0, |p| self.method_score(p.method)),
                Event::ServiceConnect { conn } | Event::ServiceDisconnect { conn } => {
                    self.class_score(world.heap.class_of(*conn))
                }
                Event::Broadcast { receiver } => self.class_score(world.heap.class_of(*receiver)),
                Event::TaskPost { run } => world
                    .async_runs
                    .get(*run)
                    .map_or(0, |r| self.class_score(world.heap.class_of(r.obj))),
            },
        }
    }
}

impl Guide for EvidenceGuide<'_> {
    fn admit(&self, world: &World<'_>, step: &Step) -> bool {
        if !self.prune {
            return true;
        }
        // Only events are pruned: blocking a mid-execution task would
        // strand admitted work inside helper methods.
        match step {
            Step::Advance { .. } => true,
            Step::Dispatch(_) => self.step_score(world, step) > 0,
        }
    }

    fn priority(&self, world: &World<'_>, step: &Step) -> i32 {
        self.step_score(world, step)
    }
}

/// The confirmation of one warning, with the report fields the
/// `nadroid-confirm/1` row carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarningConfirmation {
    /// The warning's stable id (`w:` + 16 hex digits).
    pub id: String,
    /// The racy field, as `Class.field`.
    pub field: String,
    /// The use site, as `Class.method#instr`.
    pub use_site: String,
    /// The free site.
    pub free_site: String,
    /// The verdict, reason, search statistics, and witness schedule.
    pub confirmation: Confirmation,
}

/// Per-verdict counts over a batch confirmation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Warnings with a replay-verified witness schedule.
    pub confirmed: usize,
    /// Warnings whose search budget ran out inconclusively.
    pub unconfirmed: usize,
    /// Warnings proven unmanifestable within the model's bounds.
    pub infeasible: usize,
}

impl Tally {
    /// Count a verdict.
    pub fn add(&mut self, v: ConfirmVerdict) {
        match v {
            ConfirmVerdict::Confirmed => self.confirmed += 1,
            ConfirmVerdict::Unconfirmed => self.unconfirmed += 1,
            ConfirmVerdict::Infeasible => self.infeasible += 1,
        }
    }

    /// Total warnings tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.confirmed + self.unconfirmed + self.infeasible
    }
}

/// A batch confirmation: one row per surviving warning (verdicts are
/// computed once per distinct (use, free) pair and shared), in the
/// analysis's deterministic warning order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmOutcome {
    /// Per-warning confirmations.
    pub results: Vec<WarningConfirmation>,
    /// Verdict counts over `results`.
    pub tally: Tally,
}

/// Confirm one warning: HB and reachability fast paths, then the
/// directed phase, then the bounded fallback.
#[must_use]
pub fn confirm_warning(
    analysis: &Analysis<'_>,
    w: &UafWarning,
    cfg: &ConfirmConfig,
) -> Confirmation {
    #[cfg(feature = "metrics")]
    if nadroid_obs::cancel::should_stop() {
        return Confirmation {
            verdict: ConfirmVerdict::Unconfirmed,
            reason: "cancelled before the search ran".to_owned(),
            states_explored: 0,
            schedule: None,
            npe_at: None,
        };
    }
    let c = confirm_uncounted(analysis, w, cfg);
    #[cfg(feature = "metrics")]
    {
        nadroid_obs::counter(&format!("confirm.{}", c.verdict), 1);
        nadroid_obs::counter("confirm.states", c.states_explored);
    }
    c
}

fn confirm_uncounted(analysis: &Analysis<'_>, w: &UafWarning, cfg: &ConfirmConfig) -> Confirmation {
    let program = analysis.program();
    let threads = analysis.threads();

    // Fast path 1: a component that no intent reaches never receives
    // events, so callbacks on its threads can never execute — the model
    // enables no schedule containing the access.
    for (what, tid) in [("use", w.use_thread), ("free", w.free_thread)] {
        if let Some(c) = threads.thread(tid).component() {
            if !program.component_reachable(program.outermost_class(c)) {
                return infeasible(
                    format!(
                        "component {} is unreachable: no intent starts it, so the {what} callback never executes",
                        program.class(c).name()
                    ),
                    0,
                );
            }
        }
    }

    // Fast path 2: a sound mustHb ordering of the use thread before the
    // free thread rules out every interleaving that places the free
    // first. (Rare for survivors — the MHB filter prunes these — but
    // load-bearing when the filter pipeline is configured off.)
    if analysis.hb().must_hb(w.use_thread, w.free_thread) {
        return infeasible(
            "mustHb orders the use thread before the free thread: no interleaving places the free first"
                .to_owned(),
            0,
        );
    }

    let goal = nadroid_dynamic::Goal::Pair {
        use_instr: w.use_access.instr,
        free_instr: w.free_access.instr,
    };
    let mut states_total: u64 = 0;

    // Directed phase: evidence-pruned, free-side-first search.
    let directed = EvidenceGuide::from_warning(analysis, w, true);
    match explore_guided(program, goal, cfg.directed, Some(&directed)) {
        Exploration::Witness(witness) => {
            return confirmed(program, w, &witness, states_total, "directed search");
        }
        Exploration::Exhausted { states, .. } => {
            // A pruned search can never prove infeasibility; fall
            // through to the complete phase either way.
            states_total += states as u64;
        }
    }

    // Fallback: full bounded exploration, evidence priorities kept.
    let ordered = EvidenceGuide::from_warning(analysis, w, false);
    match explore_guided(program, goal, cfg.fallback, Some(&ordered)) {
        Exploration::Witness(witness) => {
            confirmed(program, w, &witness, states_total, "bounded fallback")
        }
        Exploration::Exhausted {
            states,
            complete: true,
        } => infeasible(
            format!(
                "bounded exploration drained the reachable state space ({states} states) without manifesting the pair"
            ),
            states_total + states as u64,
        ),
        Exploration::Exhausted {
            states,
            complete: false,
        } => Confirmation {
            verdict: ConfirmVerdict::Unconfirmed,
            reason: format!("search budget exhausted after {} states", states_total + states as u64),
            states_explored: states_total + states as u64,
            schedule: None,
            npe_at: None,
        },
    }
}

fn infeasible(reason: String, states: u64) -> Confirmation {
    Confirmation {
        verdict: ConfirmVerdict::Infeasible,
        reason,
        states_explored: states,
        schedule: None,
        npe_at: None,
    }
}

fn confirmed(
    program: &Program,
    w: &UafWarning,
    witness: &Witness,
    prior_states: u64,
    phase: &str,
) -> Confirmation {
    let min = minimize_schedule(program, &witness.schedule, &witness.npe);
    // The minimizer asserts every pass, but the verdict's contract is
    // stronger: the *attached* schedule replays to the warning's exact
    // NPE from a fresh world.
    let final_world = replay(program, &min);
    assert_eq!(
        final_world.npe.as_ref(),
        Some(&witness.npe),
        "minimized schedule must reproduce the witness NPE"
    );
    assert_eq!(witness.npe.loaded_from, Some(w.use_access.instr));
    assert_eq!(witness.npe.freed_by, Some(w.free_access.instr));
    Confirmation {
        verdict: ConfirmVerdict::Confirmed,
        reason: format!(
            "{phase} manifested the pair ({} steps minimized to {})",
            witness.schedule.len(),
            min.len()
        ),
        states_explored: prior_states + witness.states_explored as u64,
        schedule: Some(encode_schedule(&min)),
        npe_at: Some(program.describe_instr(witness.npe.at)),
    }
}

/// Confirm every surviving warning. One search per distinct (use, free)
/// pair, run on the ambient [`nadroid_par`] thread budget and merged in
/// sorted pair order — results are byte-identical at any thread count.
#[must_use]
pub fn confirm_survivors(analysis: &Analysis<'_>, cfg: &ConfirmConfig) -> ConfirmOutcome {
    let survivors = analysis.survivors();
    let mut pairs: Vec<(InstrId, InstrId)> = survivors.iter().map(|w| w.pair()).collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut repr: HashMap<(InstrId, InstrId), &UafWarning> = HashMap::new();
    for w in &survivors {
        repr.entry(w.pair()).or_insert(w);
    }
    let verdicts: Vec<Confirmation> = nadroid_par::map_chunks(pairs.len(), 1, |range| {
        range
            .map(|i| confirm_warning(analysis, repr[&pairs[i]], cfg))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let by_pair: HashMap<(InstrId, InstrId), &Confirmation> =
        pairs.iter().copied().zip(verdicts.iter()).collect();
    let program = analysis.program();
    let threads = analysis.threads();
    let mut results = Vec::with_capacity(survivors.len());
    let mut tally = Tally::default();
    for w in &survivors {
        let confirmation = (*by_pair[&w.pair()]).clone();
        tally.add(confirmation.verdict);
        results.push(WarningConfirmation {
            id: warning_id(program, threads, w),
            field: format!(
                "{}.{}",
                program.class(program.field(w.field).owner()).name(),
                program.field(w.field).name()
            ),
            use_site: program.describe_instr(w.use_access.instr),
            free_site: program.describe_instr(w.free_access.instr),
            confirmation,
        });
    }
    ConfirmOutcome { results, tally }
}

/// Confirm the single warning with the given id (surviving or pruned —
/// a pruned warning can still be probed). `None` when no warning has
/// that id.
#[must_use]
pub fn confirm_by_id(
    analysis: &Analysis<'_>,
    id: &str,
    cfg: &ConfirmConfig,
) -> Option<WarningConfirmation> {
    let program = analysis.program();
    let threads = analysis.threads();
    let w = analysis
        .warnings()
        .iter()
        .find(|w| warning_id(program, threads, w) == id)?;
    Some(WarningConfirmation {
        id: id.to_owned(),
        field: format!(
            "{}.{}",
            program.class(program.field(w.field).owner()).name(),
            program.field(w.field).name()
        ),
        use_site: program.describe_instr(w.use_access.instr),
        free_site: program.describe_instr(w.free_access.instr),
        confirmation: confirm_warning(analysis, w, cfg),
    })
}

/// Copy the batch verdicts into the matching provenance entries (the
/// `nadroid-provenance/3` `confirmation` block). Entries without a
/// verdict — pruned warnings — keep `confirmation: None`. Returns how
/// many entries were filled.
pub fn attach_confirmations(
    provenances: &mut [nadroid_core::WarningProvenance],
    outcome: &ConfirmOutcome,
) -> usize {
    let by_id: HashMap<&str, &Confirmation> = outcome
        .results
        .iter()
        .map(|r| (r.id.as_str(), &r.confirmation))
        .collect();
    let mut filled = 0;
    for p in provenances {
        if let Some(c) = by_id.get(p.id.as_str()) {
            p.confirmation = Some((*c).clone());
            filled += 1;
        }
    }
    filled
}

/// Serialize a batch confirmation as the `nadroid-confirm/1` document.
///
/// The `population` digest covers the *surviving-warning ids* (the same
/// digest the static drivers report), so a reader can check at a glance
/// that confirmation ran against unchanged static results.
#[must_use]
pub fn render_confirm_json(analysis: &Analysis<'_>, outcome: &ConfirmOutcome) -> String {
    let ids: Vec<String> = outcome.results.iter().map(|r| r.id.clone()).collect();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"app\": \"{}\",",
        nadroid_core::esc(analysis.program().name())
    );
    let _ = writeln!(
        out,
        "  \"program_hash\": \"{}\",",
        nadroid_core::esc(&nadroid_core::program_hash(analysis.program()))
    );
    let _ = writeln!(
        out,
        "  \"population\": \"{}\",",
        warning_population_digest(&ids)
    );
    let _ = writeln!(
        out,
        "  \"tally\": {{ \"confirmed\": {}, \"unconfirmed\": {}, \"infeasible\": {} }},",
        outcome.tally.confirmed, outcome.tally.unconfirmed, outcome.tally.infeasible
    );
    out.push_str("  \"results\": [");
    for (i, r) in outcome.results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"id\": \"{}\",", nadroid_core::esc(&r.id));
        let _ = writeln!(out, "      \"field\": \"{}\",", nadroid_core::esc(&r.field));
        let _ = writeln!(
            out,
            "      \"use_site\": \"{}\",",
            nadroid_core::esc(&r.use_site)
        );
        let _ = writeln!(
            out,
            "      \"free_site\": \"{}\",",
            nadroid_core::esc(&r.free_site)
        );
        let c = &r.confirmation;
        let _ = writeln!(out, "      \"verdict\": \"{}\",", c.verdict);
        let _ = writeln!(out, "      \"reason\": \"{}\",", nadroid_core::esc(&c.reason));
        let _ = writeln!(out, "      \"states_explored\": {},", c.states_explored);
        match &c.schedule {
            Some(s) => {
                let _ = writeln!(out, "      \"schedule\": \"{}\",", nadroid_core::esc(s));
            }
            None => out.push_str("      \"schedule\": null,\n"),
        }
        match &c.npe_at {
            Some(s) => {
                let _ = writeln!(out, "      \"npe_at\": \"{}\"", nadroid_core::esc(s));
            }
            None => out.push_str("      \"npe_at\": null\n"),
        }
        out.push_str("    }");
    }
    if outcome.results.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_core::{analyze, render_provenance_json_with, AnalysisConfig};
    use nadroid_dynamic::decode_schedule;
    use nadroid_ir::parse_program;

    const FIG1A: &str = r#"
        app Fig1a
        activity Console {
            field bound: Console
            cb onCreate { bind this }
            cb onServiceConnected { bound = new Console }
            cb onServiceDisconnected { bound = null }
            cb onCreateContextMenu { use bound }
        }
    "#;

    /// A surviving warning in a component no intent reaches: the model
    /// never starts it, so confirmation must prove infeasibility.
    const UNREACHABLE: &str = r#"
        app Ghosted
        activity Hub { cb onCreate { } }
        activity Ghost {
            field f: Ghost
            cb onCreate { f = new Ghost }
            cb onClick { use f }
            cb onStop { f = null }
        }
        manifest { main Hub }
    "#;

    fn confirm_app(src: &str) -> ConfirmOutcome {
        let p = parse_program(src).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        confirm_survivors(&a, &ConfirmConfig::default())
    }

    #[test]
    fn fig1a_is_confirmed_with_a_replayable_minimized_schedule() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let outcome = confirm_survivors(&a, &ConfirmConfig::default());
        assert!(outcome.tally.confirmed >= 1, "{outcome:?}");
        let r = outcome
            .results
            .iter()
            .find(|r| r.confirmation.verdict == ConfirmVerdict::Confirmed)
            .expect("a confirmed result");
        let encoded = r.confirmation.schedule.as_ref().expect("schedule attached");
        let steps = decode_schedule(encoded).expect("schedule decodes");
        let world = replay(&p, &steps);
        let npe = world.npe.expect("replay reproduces the NPE");
        // The NPE is the *warning's*: null loaded at its use site.
        let w = a
            .survivors()
            .into_iter()
            .find(|w| warning_id(&p, a.threads(), w) == r.id)
            .unwrap()
            .clone();
        assert_eq!(npe.loaded_from, Some(w.use_access.instr));
        assert_eq!(npe.freed_by, Some(w.free_access.instr));
        assert!(r.confirmation.npe_at.is_some());
    }

    #[test]
    fn unreachable_component_is_infeasible() {
        let outcome = confirm_app(UNREACHABLE);
        assert!(outcome.tally.infeasible >= 1, "{outcome:?}");
        assert_eq!(outcome.tally.confirmed, 0, "{outcome:?}");
        let r = &outcome.results[0];
        assert!(
            r.confirmation.reason.contains("unreachable"),
            "{:?}",
            r.confirmation.reason
        );
        assert!(r.confirmation.schedule.is_none());
    }

    #[test]
    fn complete_drain_proves_infeasibility_without_fast_paths() {
        // A free that can only run after the use's activity is gone:
        // onDestroy is terminal, onClick needs a visible activity, so
        // free-then-use never interleaves — and the state space is
        // small enough that the fallback search drains it completely.
        let p = parse_program(
            r#"
            app Drained
            activity Main {
                field f: Main
                cb onCreate { f = new Main }
                cb onClick { use f }
                cb onDestroy { f = null }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let outcome = confirm_survivors(&a, &ConfirmConfig::default());
        for r in &outcome.results {
            assert_ne!(
                r.confirmation.verdict,
                ConfirmVerdict::Confirmed,
                "free in onDestroy can never precede a UI use: {r:?}"
            );
        }
        // Whether the drain completes depends only on the model bounds,
        // which are deterministic — assert the stronger verdict when
        // the search reports a full drain.
        if outcome
            .results
            .iter()
            .any(|r| r.confirmation.verdict == ConfirmVerdict::Infeasible)
        {
            let r = outcome
                .results
                .iter()
                .find(|r| r.confirmation.verdict == ConfirmVerdict::Infeasible)
                .unwrap();
            assert!(
                r.confirmation.reason.contains("drained")
                    || r.confirmation.reason.contains("mustHb"),
                "{:?}",
                r.confirmation.reason
            );
        }
    }

    #[test]
    fn verdicts_are_identical_across_thread_counts_and_reruns() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let cfg = ConfirmConfig::default();
        let base = confirm_survivors(&a, &cfg);
        for threads in [1usize, 2, 4] {
            let got = nadroid_par::with_threads(threads, || confirm_survivors(&a, &cfg));
            assert_eq!(got, base, "threads={threads}");
            assert_eq!(
                render_confirm_json(&a, &got),
                render_confirm_json(&a, &base),
                "threads={threads}"
            );
        }
        assert_eq!(confirm_survivors(&a, &cfg), base, "rerun");
    }

    #[test]
    fn confirm_json_is_balanced_and_carries_the_schema() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let outcome = confirm_survivors(&a, &ConfirmConfig::default());
        let json = render_confirm_json(&a, &outcome);
        assert!(json.contains("\"schema\": \"nadroid-confirm/1\""), "{json}");
        assert!(json.contains("\"tally\""), "{json}");
        assert!(json.contains("\"population\": \"wp:"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let v = nadroid_core::parse_json(&json).expect("parses");
        assert_eq!(
            v.get("schema").and_then(nadroid_core::JsonValue::as_str),
            Some(SCHEMA)
        );
    }

    #[test]
    fn attaching_confirmations_never_changes_static_results() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let before = a.warning_provenances();
        let outcome = confirm_survivors(&a, &ConfirmConfig::default());
        let mut after = before.clone();
        let filled = attach_confirmations(&mut after, &outcome);
        assert_eq!(filled, outcome.results.len());
        // Static content is untouched: stripping the confirmation back
        // out yields the original provenances byte-for-byte.
        let mut stripped = after.clone();
        for p in &mut stripped {
            p.confirmation = None;
        }
        assert_eq!(stripped, before);
        let doc = render_provenance_json_with(&a, &after);
        assert!(doc.contains("\"verdict\": \"confirmed\""), "{doc}");
    }

    #[test]
    fn confirm_by_id_finds_known_ids_only() {
        let p = parse_program(FIG1A).unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let outcome = confirm_survivors(&a, &ConfirmConfig::default());
        let id = &outcome.results[0].id;
        let one = confirm_by_id(&a, id, &ConfirmConfig::default()).expect("known id");
        assert_eq!(&one, &outcome.results[0]);
        assert!(confirm_by_id(&a, "w:0000000000000000", &ConfirmConfig::default()).is_none());
    }

    #[test]
    fn directed_phase_finds_the_witness_cheaper_than_fallback_alone() {
        // The evidence guide prunes irrelevant components: planting a
        // noisy unrelated activity must not blow up the directed phase.
        let p = parse_program(
            r#"
            app Noisy
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            activity Busy {
                field x: Busy
                cb onCreate { x = new Busy }
                cb onClick { use x }
                cb onLongClick { x = new Busy }
            }
            "#,
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::default());
        let w = a
            .survivors()
            .into_iter()
            .find(|w| {
                a.program().class(a.program().field(w.field).owner()).name() == "Console"
            })
            .unwrap()
            .clone();
        let c = confirm_warning(&a, &w, &ConfirmConfig::default());
        assert_eq!(c.verdict, ConfirmVerdict::Confirmed, "{c:?}");
        assert!(c.reason.contains("directed search"), "{c:?}");
    }
}
