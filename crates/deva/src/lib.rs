//! DEvA baseline: the state-of-the-art static "event anomaly" detector
//! the paper compares against (§2.3, §8.7).
//!
//! This reimplements DEvA's published algorithm with the limitations the
//! paper documents, which is what makes the Table 3 comparison
//! meaningful:
//!
//! 1. **Intra-class scope**: read/write sets are computed per class and
//!    its inner classes; inter-class racy accesses are invisible.
//! 2. **No multi-threading**: Runnable, Thread, AsyncTask, and Handler
//!    classes are not treated as concurrent units — their accesses are
//!    ignored, and all methods are assumed atomic.
//! 3. **Unsound if-guard and intra-allocation filters**: applied without
//!    any atomicity analysis.
//! 4. **No happens-before reasoning**: pairs ordered by the Android
//!    lifecycle (e.g. frees in `onDestroy`) are still reported — the
//!    false positives nAdroid's MHB filter removes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_android::{CallbackKind, ClassRole};
use nadroid_ir::walk::{self, InstrCtx};
use nadroid_ir::{ClassId, FieldId, InstrId, Local, MethodId, Op, Program};
use std::collections::HashMap;

/// One DEvA event-anomaly warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevaWarning {
    /// The racy field.
    pub field: FieldId,
    /// The class group (outermost class) the anomaly was found in.
    pub group: ClassId,
    /// The handler containing the use.
    pub use_handler: MethodId,
    /// The use instruction.
    pub use_instr: InstrId,
    /// The handler containing the free.
    pub free_handler: MethodId,
    /// The free instruction.
    pub free_instr: InstrId,
}

impl DevaWarning {
    /// The (use, free) pair, comparable with nAdroid warnings.
    #[must_use]
    pub fn pair(&self) -> (InstrId, InstrId) {
        (self.use_instr, self.free_instr)
    }
}

/// Whether DEvA treats a class as hosting event handlers at all
/// (limitation 2: thread-adjacent classes are not concurrent units).
fn analyzed_role(role: ClassRole) -> bool {
    !matches!(
        role,
        ClassRole::Runnable | ClassRole::Thread | ClassRole::AsyncTask | ClassRole::Handler
    )
}

/// Whether DEvA considers a callback an event handler.
fn is_handler(kind: CallbackKind) -> bool {
    kind.runs_on_looper()
        && !matches!(
            kind,
            CallbackKind::PostedRun
                | CallbackKind::HandleMessage
                | CallbackKind::OnPreExecute
                | CallbackKind::OnProgressUpdate
                | CallbackKind::OnPostExecute
        )
}

#[derive(Debug, Clone)]
struct HandlerAccess {
    handler: MethodId,
    instr: InstrId,
    field: FieldId,
    guarded: bool,
    alloc_before: bool,
}

/// Run DEvA over a program.
#[must_use]
pub fn run_deva(program: &Program) -> Vec<DevaWarning> {
    // Group classes by their outermost class.
    let mut groups: HashMap<ClassId, Vec<ClassId>> = HashMap::new();
    for (cid, _) in program.classes() {
        groups
            .entry(program.outermost_class(cid))
            .or_default()
            .push(cid);
    }

    let mut out = Vec::new();
    for (&group, members) in &groups {
        let (uses, frees) = group_accesses(program, members);
        for u in &uses {
            // Unsound filters: guard or allocation-before drops the use
            // with no atomicity consideration (limitation 3).
            if u.guarded || u.alloc_before {
                continue;
            }
            for f in &frees {
                if u.field != f.field || u.handler == f.handler {
                    continue;
                }
                out.push(DevaWarning {
                    field: u.field,
                    group,
                    use_handler: u.handler,
                    use_instr: u.instr,
                    free_handler: f.handler,
                    free_instr: f.instr,
                });
            }
        }
    }
    out.sort_by_key(DevaWarning::pair);
    out
}

/// Collect the handler-attributed uses and frees of one class group.
fn group_accesses(
    program: &Program,
    members: &[ClassId],
) -> (Vec<HandlerAccess>, Vec<HandlerAccess>) {
    let group_fields: Vec<FieldId> = members
        .iter()
        .flat_map(|&c| program.class(c).fields().iter().copied())
        .collect();
    let mut uses = Vec::new();
    let mut frees = Vec::new();
    for &c in members {
        if !analyzed_role(program.class(c).role()) {
            continue;
        }
        for &h in program.class(c).methods() {
            let Some(kind) = program.method(h).callback() else {
                continue;
            };
            if !is_handler(kind) {
                continue;
            }
            // Intra-class read/write sets: the handler plus plain methods
            // it calls *within the group*.
            for m in nadroid_threadify::own_methods(program, h) {
                if !members.contains(&program.method(m).owner()) {
                    continue;
                }
                collect_method(program, m, h, &group_fields, &mut uses, &mut frees);
            }
        }
    }
    (uses, frees)
}

fn collect_method(
    program: &Program,
    method: MethodId,
    handler: MethodId,
    group_fields: &[FieldId],
    uses: &mut Vec<HandlerAccess>,
    frees: &mut Vec<HandlerAccess>,
) {
    // DEvA's "allocation before" is a crude linear scan: any store of a
    // fresh object into the field earlier in the method body counts,
    // path-insensitively (limitation 3).
    let mut allocated: Vec<FieldId> = Vec::new();
    let mut fresh: Vec<Local> = Vec::new();
    walk::walk_method(program, method, &mut |i, ctx: &InstrCtx| match i.op {
        Op::New { dst, .. } => fresh.push(dst),
        Op::Store { field, src, .. } if fresh.contains(&src) && !allocated.contains(&field) => {
            allocated.push(field);
        }
        Op::Load { base, field, .. } if group_fields.contains(&field) => {
            uses.push(HandlerAccess {
                handler,
                instr: i.id,
                field,
                guarded: ctx.guarded_non_null(base, field),
                alloc_before: allocated.contains(&field),
            });
        }
        Op::StoreNull { field, .. } if group_fields.contains(&field) => {
            frees.push(HandlerAccess {
                handler,
                instr: i.id,
                field,
                guarded: false,
                alloc_before: false,
            });
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;
    use nadroid_ir::Program;

    fn deva(src: &str) -> (Program, Vec<DevaWarning>) {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let w = run_deva(&p);
        (p, w)
    }

    #[test]
    fn reports_intra_class_anomalies_including_ondestroy() {
        // The Table 3 pattern: DEvA flags onDestroy frees that nAdroid's
        // MHB filter would prune.
        let (p, w) = deva(
            r#"
            app Music
            activity AlbBrowActv {
                field mAdapter: AlbBrowActv
                cb onActivityResult { use mAdapter }
                cb onDestroy { mAdapter = null }
            }
            "#,
        );
        assert_eq!(w.len(), 1);
        let act = p.class_by_name("AlbBrowActv").unwrap();
        assert_eq!(p.method(w[0].free_handler).name(), "onDestroy");
        assert_eq!(w[0].group, act);
    }

    #[test]
    fn misses_cross_class_races() {
        // Figure 1(b)-style: the use sits in a posted Runnable; DEvA's
        // scope never sees it.
        let (_p, w) = deva(
            r#"
            app ConnectBot
            activity Console {
                field hostBridge: Console
                cb onCreate { bind this }
                cb onServiceConnected { hostBridge = new Console }
                cb onServiceDisconnected { hostBridge = null }
                cb onClick { if hostBridge != null { post R } }
            }
            runnable R in Console {
                cb run { use outer.hostBridge }
            }
            "#,
        );
        assert!(w.is_empty(), "DEvA misses the posted use: {w:?}");
    }

    #[test]
    fn misses_thread_races() {
        // Figure 1(c): the freeing access lives in a Thread class.
        let (_p, w) = deva(
            r#"
            app FireFox
            activity Main {
                field jClient: Main
                cb onResume { spawn W }
                cb onPause { use jClient }
            }
            thread W in Main {
                cb run { outer.jClient = null }
            }
            "#,
        );
        assert!(w.is_empty(), "DEvA ignores the thread's free: {w:?}");
    }

    #[test]
    fn unsound_guard_filter_drops_guarded_uses() {
        let (_p, w) = deva(
            r#"
            app G
            activity M {
                field f: M
                cb onClick { if f != null { use f } }
                cb onPause { f = null }
            }
            "#,
        );
        assert!(w.is_empty(), "guarded use dropped without atomicity check");
    }

    #[test]
    fn unsound_alloc_filter_drops_alloc_before_uses() {
        let (_p, w) = deva(
            r#"
            app A
            activity M {
                field f: M
                cb onClick {
                    if ? { f = new M } else { }
                    use f
                }
                cb onPause { f = null }
            }
            "#,
        );
        // A may-allocation suffices for DEvA (path-insensitive, unsound);
        // nAdroid's sound IA would keep this pair.
        assert!(w.is_empty());
    }

    #[test]
    fn detects_plain_two_handler_anomaly() {
        let (_p, w) = deva(
            r#"
            app D
            activity M {
                field f: M
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        );
        assert_eq!(w.len(), 1);
    }
}
