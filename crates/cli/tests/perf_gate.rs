//! End-to-end `nadroid perf` gate through the real binary: a canned
//! ledger with one injected counter change and one warning-population
//! change must exit nonzero with a verdict naming the regressed
//! counter and the exact warning ids that moved; identical records
//! must pass; and a BENCH document gated against its own conversion
//! must pass (the converter is deterministic).

use nadroid_ledger::{AppPopulation, Env, Kind, Population, Record};
use std::process::Command;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nadroid_{}_{}", name, std::process::id()));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn fixed_env() -> Env {
    Env {
        cores: 8,
        threads: 1,
        features: vec!["obs".to_string()],
        profile: "release".to_string(),
    }
}

fn population(ids: &[&str]) -> Population {
    let mut ids: Vec<String> = ids.iter().map(|s| (*s).to_string()).collect();
    ids.sort_unstable();
    Population {
        apps: vec![AppPopulation {
            app: "connectbot".to_string(),
            digest: nadroid_core::warning_population_digest(&ids),
            ids,
        }],
        tallies: std::collections::BTreeMap::new(),
    }
}

/// Two records: #1 the baseline, #2 with a counter change and one
/// warning swapped for another in connectbot's population.
fn seeded_ledger(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("ledger.jsonl");
    let mut base = Record::new(Kind::Timing);
    base.ts = 1_754_000_000;
    base.env = fixed_env();
    base.counters.insert("pointsto.queue_pops".to_string(), 12_677);
    base.population = Some(population(&[
        "w:00000000000000aa",
        "w:00000000000000bb",
    ]));
    let mut cur = base.clone();
    cur.kind = Kind::Ci;
    cur.ts = 1_754_000_100;
    cur.counters.insert("pointsto.queue_pops".to_string(), 13_000);
    cur.population = Some(population(&[
        "w:00000000000000aa",
        "w:00000000000000cc",
    ]));
    nadroid_ledger::append(&path, &base).expect("append baseline");
    nadroid_ledger::append(&path, &cur).expect("append drifted record");
    path
}

fn gate(ledger: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut argv = vec!["perf", "gate", "--ledger", ledger.to_str().unwrap()];
    argv.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_nadroid"))
        .args(&argv)
        .output()
        .expect("spawn nadroid")
}

#[test]
fn seeded_drift_fails_the_gate_with_a_named_verdict() {
    let dir = temp_dir("perf_gate_drift");
    let ledger = seeded_ledger(&dir);
    let out = gate(&ledger, &["--against", "1", "--current", "2"]);
    assert!(
        !out.status.success(),
        "gate must exit nonzero on seeded drift:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The verdict names the regressed counter with exact values...
    assert!(err.contains("counters.pointsto.queue_pops"), "{err}");
    assert!(err.contains("12677 -> 13000 (+323)"), "{err}");
    // ...and the population drift down to the individual warning ids.
    assert!(err.contains("population.connectbot"), "{err}");
    assert!(err.contains("added [w:00000000000000cc]"), "{err}");
    assert!(err.contains("removed [w:00000000000000bb]"), "{err}");
    assert!(
        err.contains("FAIL: 2 blocking difference(s) (0 regression(s), 2 drift(s))"),
        "{err}"
    );
}

#[test]
fn identical_records_pass_the_gate() {
    let dir = temp_dir("perf_gate_pass");
    let ledger = seeded_ledger(&dir);
    let out = gate(&ledger, &["--against", "1", "--current", "1"]);
    assert!(
        out.status.success(),
        "self-gate must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no differences beyond noise"), "{text}");
    assert!(text.contains("PASS: no regressions, no drift"), "{text}");
}

/// `perf record --from BENCH_timing.json` followed by
/// `perf gate --against BENCH_timing.json --current last` must pass:
/// both sides are conversions of the same committed document, so every
/// counter and population entry matches exactly.
#[test]
fn bench_document_gates_cleanly_against_its_own_conversion() {
    let dir = temp_dir("perf_gate_bench");
    let ledger = dir.join("ledger.jsonl");
    let bench = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timing.json");

    let rec = Command::new(env!("CARGO_BIN_EXE_nadroid"))
        .args([
            "perf",
            "record",
            "--from",
            bench,
            "--ledger",
            ledger.to_str().unwrap(),
        ])
        .output()
        .expect("spawn nadroid");
    assert!(
        rec.status.success(),
        "record --from failed: {}",
        String::from_utf8_lossy(&rec.stderr)
    );
    let listed = Command::new(env!("CARGO_BIN_EXE_nadroid"))
        .args(["perf", "list", "--ledger", ledger.to_str().unwrap()])
        .output()
        .expect("spawn nadroid");
    let listing = String::from_utf8_lossy(&listed.stdout);
    assert!(listing.contains("1 record(s)"), "{listing}");
    assert!(listing.contains("#1 timing"), "{listing}");

    let out = gate(&ledger, &["--against", bench, "--current", "last"]);
    assert!(
        out.status.success(),
        "gate against the source document must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PASS: no regressions, no drift"), "{text}");
}
