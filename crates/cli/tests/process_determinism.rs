//! Cross-process determinism: two separate invocations of the `nadroid`
//! binary on the same input must print byte-identical output — warning
//! ids, filter verdicts, JSON reports, explain text. The in-process
//! variant lives in the workspace root's `tests/determinism.rs`; this
//! one additionally catches any dependence on ASLR, hash-map iteration
//! seeds, or other per-process state.

use std::process::Command;

fn connectbot() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../apps/connectbot.dsl").to_owned()
}

fn run_once(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_nadroid"))
        .args(args)
        .output()
        .expect("spawn nadroid");
    assert!(
        out.status.success(),
        "nadroid {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn analyze_json_is_byte_identical_across_processes() {
    let app = connectbot();
    let first = run_once(&["analyze", &app, "--json"]);
    let second = run_once(&["analyze", &app, "--json"]);
    assert!(!first.is_empty());
    assert_eq!(first, second, "analyze --json drifts across processes");
}

#[test]
fn explain_is_byte_identical_across_processes() {
    let app = connectbot();
    let first = run_once(&["explain", &app]);
    let second = run_once(&["explain", &app]);
    let text = String::from_utf8(first.clone()).expect("utf8");
    assert!(text.contains("filter audit:"), "{text}");
    assert!(text.contains("w:"), "stable ids present: {text}");
    assert_eq!(first, second, "explain drifts across processes");
}

#[test]
fn text_report_is_byte_identical_across_processes() {
    let app = connectbot();
    let first = run_once(&["analyze", &app]);
    let second = run_once(&["analyze", &app]);
    assert_eq!(first, second, "text report drifts across processes");
}

/// `--threads` must be invisible in every byte the binary prints:
/// sweep the curve against a fresh single-threaded process for both the
/// JSON report and the explain rendering (which exercises provenance
/// derivation on top of the pipeline).
#[test]
fn thread_count_is_byte_invisible_across_processes() {
    let app = connectbot();
    let json_base = run_once(&["analyze", &app, "--json", "--threads", "1"]);
    let explain_base = run_once(&["analyze", &app, "--threads", "1"]);
    assert!(!json_base.is_empty());
    for t in ["2", "4", "8"] {
        let json = run_once(&["analyze", &app, "--json", "--threads", t]);
        assert_eq!(json_base, json, "analyze --json drifts at --threads {t}");
        let text = run_once(&["analyze", &app, "--threads", t]);
        assert_eq!(explain_base, text, "text report drifts at --threads {t}");
    }
}

/// Confirmation output — verdicts, minimized witness schedules, state
/// counts, and the tally header — must be byte-identical across
/// processes and at every `--threads` value, in both the text and JSON
/// renderings. This is what lets the serve cache store a confirm
/// document computed once.
#[test]
fn confirm_is_byte_identical_across_processes_and_threads() {
    let app = connectbot();
    let json_base = run_once(&["confirm", &app, "--json", "--threads", "1"]);
    let text_base = run_once(&["confirm", &app, "--threads", "1"]);
    let text = String::from_utf8(text_base.clone()).expect("utf8");
    assert!(text.contains("verdict: confirmed"), "{text}");
    assert!(text.contains("witness schedule:"), "{text}");
    for t in ["2", "4"] {
        let json = run_once(&["confirm", &app, "--json", "--threads", t]);
        assert_eq!(json_base, json, "confirm --json drifts at --threads {t}");
        let out = run_once(&["confirm", &app, "--threads", t]);
        assert_eq!(text_base, out, "confirm text drifts at --threads {t}");
    }
    // A fresh process at the baseline thread count reproduces the
    // document byte for byte.
    let rerun = run_once(&["confirm", &app, "--json", "--threads", "1"]);
    assert_eq!(json_base, rerun, "confirm --json drifts across processes");
}

/// The `NADROID_THREADS` environment default must behave exactly like
/// the flag — this is how CI runs the whole tier-1 suite at 4 threads.
#[test]
fn threads_env_var_matches_the_flag() {
    let app = connectbot();
    let flagged = run_once(&["analyze", &app, "--json", "--threads", "4"]);
    let out = Command::new(env!("CARGO_BIN_EXE_nadroid"))
        .args(["analyze", &app, "--json"])
        .env("NADROID_THREADS", "4")
        .output()
        .expect("spawn nadroid");
    assert!(out.status.success());
    assert_eq!(flagged, out.stdout, "env default and flag disagree");
}
