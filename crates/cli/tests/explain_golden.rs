//! Golden-shape test for warning provenance: `nadroid explain` and the
//! `--provenance` JSON exporter on the ConnectBot corpus app. The JSON
//! is checked with the same small recursive-descent parser the obs trace
//! golden test uses (no serde in the workspace), and the derivation
//! trees are pinned down to the rule encoding: every warning's tree is
//! rooted at `racyPair`, goes through `aliasedPair`, and bottoms out in
//! the EDB facts of the §5 encoding.

use nadroid_cli::{run, Command};

/// Minimal JSON value for validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(self.peek(), Some(b), "expected {:?} at {}", b as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek().expect("unexpected end of input") {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(word.as_bytes()),
            "bad literal at {}",
            self.pos
        );
        self.pos += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("bad object separator {other:?} at {}", self.pos),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("bad array separator {other:?} at {}", self.pos),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().expect("unterminated string") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.bytes[self.pos];
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).expect("bad code point"));
                            self.pos += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                }
                _ => {
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number `{text}`")))
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

fn corpus_app() -> String {
    format!(
        "{}/../../apps/connectbot.dsl",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn is_warning_id(s: &str) -> bool {
    s.len() == 18
        && s.starts_with("w:")
        && s[2..].bytes().all(|b| b.is_ascii_hexdigit())
}

/// Assert the derivation tree pins the §5 rule encoding: `racyPair` at
/// the root, `aliasedPair` below it, EDB leaves with `rule: null`.
fn check_tree(node: &Json, depth: usize) {
    let relation = node.get("relation").and_then(Json::as_str).unwrap();
    let premises = match node.get("premises") {
        Some(Json::Arr(p)) => p,
        other => panic!("premises missing: {other:?}"),
    };
    match depth {
        0 => {
            assert_eq!(relation, "racyPair");
            let names: Vec<&str> = premises
                .iter()
                .map(|p| p.get("relation").and_then(Json::as_str).unwrap())
                .collect();
            assert_eq!(
                names,
                ["aliasedPair", "runsOn", "runsOn", "distinctThreads"],
                "racyPair rule body order"
            );
        }
        1 if relation == "aliasedPair" => {
            let names: Vec<&str> = premises
                .iter()
                .map(|p| p.get("relation").and_then(Json::as_str).unwrap())
                .collect();
            assert_eq!(
                names,
                ["useAt", "freeAt", "ptsUse", "ptsFree", "sharedObj"],
                "aliasedPair rule body order"
            );
        }
        _ => {}
    }
    if premises.is_empty() {
        assert_eq!(node.get("rule"), Some(&Json::Null), "leaves are EDB facts");
    } else {
        assert!(
            node.get("rule").and_then(Json::as_str).is_some(),
            "inner nodes carry their deriving rule"
        );
        for p in premises {
            check_tree(p, depth + 1);
        }
    }
    // Every node is rendered in source terms, prefixed by its relation.
    let fact = node.get("fact").and_then(Json::as_str).unwrap();
    assert!(fact.starts_with(&format!("{relation}(")), "fact: {fact}");
}

#[test]
fn provenance_json_golden_shape_on_connectbot() {
    let dir = std::env::temp_dir().join("nadroid_explain_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let prov_path = dir.join("provenance.json");
    run(&Command::Analyze {
        path: corpus_app(),
        validate: false,
        sound_only: false,
        k: 2,
        json: false,
        baseline: None,
        update_baseline: false,
        trace: None,
        report: None,
        provenance: Some(prov_path.to_string_lossy().into_owned()),
        stats: false,
        mhp_preprune: false,
        threads: None,
    })
    .unwrap();

    let doc = parse(&std::fs::read_to_string(&prov_path).unwrap());
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("nadroid-provenance/4")
    );
    assert_eq!(doc.get("app").and_then(Json::as_str), Some("ConnectBot"));
    let warnings = match doc.get("warnings") {
        Some(Json::Arr(w)) => w,
        other => panic!("warnings missing: {other:?}"),
    };
    assert!(!warnings.is_empty(), "ConnectBot produces warnings");

    let mut fields = std::collections::BTreeSet::new();
    let mut survived = 0usize;
    for w in warnings {
        let id = w.get("id").and_then(Json::as_str).unwrap();
        assert!(is_warning_id(id), "bad id {id}");
        fields.insert(w.get("field").and_then(Json::as_str).unwrap().to_owned());
        // §7 lineage chains ride along with each warning.
        for key in ["use_lineage", "free_lineage"] {
            let lineage = w.get(key).and_then(Json::as_str).unwrap();
            assert!(lineage.starts_with("main"), "{key}: {lineage}");
        }
        if w.get("survived").and_then(Json::as_bool).unwrap() {
            survived += 1;
            assert_eq!(w.get("pruned_by"), Some(&Json::Null));
        }
        let audit = match w.get("audit") {
            Some(Json::Arr(a)) => a,
            other => panic!("audit missing: {other:?}"),
        };
        assert!(!audit.is_empty());
        for entry in audit {
            assert!(entry.get("filter").and_then(Json::as_str).is_some());
            assert!(entry.get("pruned").and_then(Json::as_bool).is_some());
            assert!(!entry
                .get("evidence")
                .and_then(Json::as_str)
                .unwrap()
                .is_empty());
        }
        let tree = w.get("derivation").expect("derivation present");
        assert_ne!(tree, &Json::Null, "every warning is explainable");
        check_tree(tree, 0);
    }
    // Figure 1(a) and 1(b): both ConnectBot fields are racy and at least
    // one warning survives the full pipeline.
    assert!(fields.contains("ConsoleActivity.bound"), "{fields:?}");
    assert!(fields.contains("ConsoleActivity.hostBridge"), "{fields:?}");
    assert!(survived >= 1);
}

/// Golden shape for the confirmation surface: `nadroid confirm
/// --provenance` must write a `nadroid-provenance/4` document whose
/// surviving warnings carry verdict blocks with replayable witness
/// schedules, and the explain rendering of that document must show the
/// confirmation section verbatim.
#[test]
fn confirmation_golden_on_connectbot() {
    let dir = std::env::temp_dir().join("nadroid_confirm_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let prov_path = dir.join("provenance.json");
    run(&Command::Confirm {
        path: corpus_app(),
        warning_id: None,
        json: false,
        threads: None,
        provenance: Some(prov_path.to_string_lossy().into_owned()),
    })
    .unwrap();

    let text = std::fs::read_to_string(&prov_path).unwrap();
    let doc = parse(&text);
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("nadroid-provenance/4")
    );
    let warnings = match doc.get("warnings") {
        Some(Json::Arr(w)) => w,
        other => panic!("warnings missing: {other:?}"),
    };
    let mut confirmed = 0usize;
    for w in warnings {
        let survived = w.get("survived").and_then(Json::as_bool).unwrap();
        let confirmation = w.get("confirmation").expect("confirmation key present");
        if !survived {
            // Pruned warnings are never searched.
            assert_eq!(confirmation, &Json::Null);
            continue;
        }
        let verdict = confirmation
            .get("verdict")
            .and_then(Json::as_str)
            .expect("survivors carry a verdict");
        assert!(
            matches!(verdict, "confirmed" | "unconfirmed" | "infeasible"),
            "bad verdict {verdict}"
        );
        if verdict == "confirmed" {
            confirmed += 1;
            let schedule = confirmation
                .get("schedule")
                .and_then(Json::as_str)
                .expect("confirmed verdicts attach a schedule");
            assert!(!schedule.is_empty());
            assert!(
                confirmation
                    .get("npe_at")
                    .and_then(Json::as_str)
                    .is_some(),
                "confirmed verdicts name the NPE site"
            );
        }
    }
    assert!(confirmed >= 1, "ConnectBot confirms at least one warning");

    // The explain renderer shows the verdict block for the same doc.
    let rendered = nadroid_core::render_explain_from_json(&text, None).unwrap();
    for needle in [
        "confirmation:",
        "verdict: confirmed",
        "states:  ",
        "npe at:  ",
        "witness schedule:",
    ] {
        assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
    }
}

/// Golden shape for the refutation surface on the Gallery corpus app:
/// two of its three warnings are soundly refuted (one per reason kind
/// the app plants — family-disabled dialog, fragment extended order)
/// and `nadroid explain` renders each `refutation:` block with its
/// full contradiction chain, while the skippable-onPause dialog
/// rightly survives. The `--provenance` JSON carries the same blocks
/// under the `nadroid-provenance/4` schema.
#[test]
fn refutation_golden_on_gallery() {
    let app = format!("{}/../../apps/gallery.dsl", env!("CARGO_MANIFEST_DIR"));
    let all = run(&Command::Explain {
        path: app.clone(),
        warning_id: None,
    })
    .unwrap();
    for needle in [
        "field:  UploadActivity.session",
        "status: refuted (disabled)",
        "field:  AlbumActivity.cache",
        "status: refuted (extended-order)",
        "field:  PreviewActivity.bitmap",
        "status: survived all filters",
        "refutation:",
        "reason: disabled",
        "reason: extended-order",
        "is gated by the dialog family",
        "every dialog enabler sits in a once-only onCreate",
        "fragment automaton: onAttach first, onDetach last",
        "no witness exists",
    ] {
        assert!(all.contains(needle), "missing {needle:?} in:\n{all}");
    }
    // Exactly the two refutable warnings carry a refutation block.
    assert_eq!(all.matches("\n  refutation:\n").count(), 2, "{all}");

    // The JSON document round-trips the same blocks.
    let dir = std::env::temp_dir().join("nadroid_refute_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let prov_path = dir.join("provenance.json");
    run(&Command::Analyze {
        path: app,
        validate: false,
        sound_only: false,
        k: 2,
        json: false,
        baseline: None,
        update_baseline: false,
        trace: None,
        report: None,
        provenance: Some(prov_path.to_string_lossy().into_owned()),
        stats: false,
        mhp_preprune: false,
        threads: None,
    })
    .unwrap();
    let doc = parse(&std::fs::read_to_string(&prov_path).unwrap());
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("nadroid-provenance/4")
    );
    let warnings = match doc.get("warnings") {
        Some(Json::Arr(w)) => w,
        other => panic!("warnings missing: {other:?}"),
    };
    assert_eq!(warnings.len(), 3, "Gallery has three potential pairs");
    let mut reasons = Vec::new();
    for w in warnings {
        let refutation = w.get("refutation").expect("refutation key present");
        if refutation == &Json::Null {
            continue;
        }
        // Refutation only applies to warnings every filter passed.
        assert_eq!(w.get("survived"), Some(&Json::Bool(true)));
        reasons.push(
            refutation
                .get("reason")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned(),
        );
        let chain = match refutation.get("chain") {
            Some(Json::Arr(c)) => c,
            other => panic!("chain missing: {other:?}"),
        };
        assert!(chain.len() >= 2, "chains state premise and contradiction");
        let last = chain.last().unwrap().as_str().unwrap();
        assert!(last.contains("no witness exists"), "{last}");
    }
    reasons.sort();
    assert_eq!(reasons, ["disabled", "extended-order"]);
}

#[test]
fn explain_text_golden_on_connectbot() {
    let all = run(&Command::Explain {
        path: corpus_app(),
        warning_id: None,
    })
    .unwrap();
    for needle in [
        "warning w:",
        "field:  ConsoleActivity.bound",
        "field:  ConsoleActivity.hostBridge",
        "status: survived all filters",
        "derivation:",
        "racyPair(",
        "aliasedPair(",
        "(base fact)",
        "filter audit:",
        "MHB",
        "no must-happens-before edge",
        "[main",
    ] {
        assert!(all.contains(needle), "missing {needle:?} in:\n{all}");
    }

    // Single-id mode explains exactly that warning; ids are stable, so
    // the id extracted from one run selects in the next.
    let id = all
        .lines()
        .find_map(|l| l.strip_prefix("warning "))
        .unwrap()
        .to_owned();
    assert!(is_warning_id(&id), "{id}");
    let one = run(&Command::Explain {
        path: corpus_app(),
        warning_id: Some(id.clone()),
    })
    .unwrap();
    assert!(one.contains(&id), "{one}");
    assert_eq!(
        one.matches("warning w:").count(),
        1,
        "exactly one warning explained:\n{one}"
    );

    let miss = run(&Command::Explain {
        path: corpus_app(),
        warning_id: Some("w:0000000000000000".into()),
    })
    .unwrap();
    assert!(miss.contains("no warning with id"), "{miss}");
    assert!(miss.contains(&id), "unknown-id note lists known ids:\n{miss}");
}
