//! The `nadroid` command-line tool.

fn main() {
    let cmd = match nadroid_cli::parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match nadroid_cli::run(&cmd) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
