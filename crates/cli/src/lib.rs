//! Command implementations behind the `nadroid` binary.
//!
//! The CLI takes an application model in the textual DSL (the
//! reproduction's stand-in for an APK) and runs the pipeline:
//!
//! ```console
//! $ nadroid analyze app.dsl              # full report
//! $ nadroid analyze app.dsl --validate   # + NPE witness search
//! $ nadroid analyze app.dsl --sound-only # skip the unsound ranking tier
//! $ nadroid nosleep app.dsl              # the §9 energy-bug client
//! $ nadroid deva app.dsl                 # the DEvA baseline, for contrast
//! $ nadroid dot app.dsl                  # threadification forest as DOT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_core::{analyze, render_report, AnalysisConfig};
use nadroid_dynamic::ExploreConfig;
use nadroid_ledger as ledger;
use nadroid_filters::FilterKind;
use nadroid_ir::{parse_program, Program};
use nadroid_serve::{AnalyzeOpts, Client, Response, ServeConfig, Server};
use nadroid_threadify::ThreadModel;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run the full pipeline and print the report.
    Analyze {
        /// Path to the DSL file.
        path: String,
        /// Also run the schedule explorer on survivors.
        validate: bool,
        /// Skip the unsound filter tier.
        sound_only: bool,
        /// Points-to sensitivity.
        k: u32,
        /// Emit JSON instead of the text report.
        json: bool,
        /// Baseline file: suppress fingerprints listed there; created or
        /// refreshed when `update_baseline` is set.
        baseline: Option<String>,
        /// Write the current warning fingerprints to the baseline file.
        update_baseline: bool,
        /// Write a Chrome `trace_event` JSON file of the run (load it in
        /// chrome://tracing or Perfetto).
        trace: Option<String>,
        /// Write a flat JSON run-report (timings, counters, span
        /// aggregates) to this file.
        report: Option<String>,
        /// Write the `nadroid-provenance/4` JSON document (stable warning
        /// ids, derivation trees, filter audit, HB evidence) to this file.
        provenance: Option<String>,
        /// Append the human-readable span/metric tree to the output.
        stats: bool,
        /// Drop must-ordered (use before free) pairs before the filter
        /// pipeline via the happens-before closure. Changes the potential
        /// count, so it is opt-in.
        mhp_preprune: bool,
        /// Worker threads for the parallel phases; `None` inherits the
        /// `NADROID_THREADS` environment default (falling back to 1).
        /// Output is byte-identical at every thread count.
        threads: Option<usize>,
    },
    /// Explain warnings: derivation tree, filter audit, lineages.
    Explain {
        /// Path to the DSL file.
        path: String,
        /// Stable warning id (`w:` + 16 hex digits); `None` explains all.
        warning_id: Option<String>,
    },
    /// Dynamically confirm surviving warnings: directed schedule
    /// synthesis that manifests each one as a concrete NPE (or proves
    /// it infeasible within the model's bounds).
    Confirm {
        /// Path to the DSL file.
        path: String,
        /// Stable warning id (`w:` + 16 hex digits); `None` confirms
        /// every surviving warning.
        warning_id: Option<String>,
        /// Emit the `nadroid-confirm/1` JSON document instead of text.
        json: bool,
        /// Worker threads for the analysis and the batch confirmation;
        /// verdicts are byte-identical at every thread count.
        threads: Option<usize>,
        /// Also write the `nadroid-provenance/4` document with the
        /// confirmation verdicts attached to this file.
        provenance: Option<String>,
    },
    /// Replay an encoded witness schedule against an app model and
    /// verify it reproduces an NPE (the cross-process check behind a
    /// `confirmed` verdict).
    Replay {
        /// Path to the DSL file.
        path: String,
        /// The encoded schedule (the `schedule` field of a confirm
        /// row), e.g. `"a2.1 l0.onCreate q0"`.
        schedule: String,
        /// Require the NPE to match this warning's use and free sites.
        warning_id: Option<String>,
    },
    /// Run the no-sleep energy-bug client.
    NoSleep {
        /// Path to the DSL file.
        path: String,
    },
    /// Run the DEvA baseline.
    Deva {
        /// Path to the DSL file.
        path: String,
    },
    /// Print the threadification forest as Graphviz DOT.
    Dot {
        /// Path to the DSL file.
        path: String,
    },
    /// Run the long-lived analysis service (`nadroid-serve/1`).
    Serve {
        /// Listen address; port 0 picks an ephemeral port.
        addr: String,
        /// Analysis worker threads.
        workers: usize,
        /// Inner analysis threads per worker (clamped so that
        /// `workers x threads` never exceeds the machine's cores).
        threads: usize,
        /// Result-cache byte budget.
        cache_bytes: usize,
        /// Default per-request deadline (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// JSONL access-log path (`None` = no access log).
        access_log: Option<String>,
        /// Slow-request capture threshold in microseconds; requests at
        /// or above it get their span tree serialized next to the
        /// access log (`None` = capture off).
        slow_us: Option<u64>,
        /// Log every n-th request to the access log (1 = all).
        log_sample: u64,
    },
    /// Send one request to a running service.
    Request {
        /// Path to the DSL file (not needed for `--stats`/`--shutdown`).
        path: Option<String>,
        /// Server address.
        addr: String,
        /// Explain instead of analyze; `--id` selects one warning.
        explain: bool,
        /// Dynamically confirm the surviving warnings instead of
        /// analyzing; the response carries the `nadroid-confirm/1`
        /// document.
        confirm: bool,
        /// Stable warning id for `--explain`.
        id: Option<String>,
        /// Points-to sensitivity.
        k: u32,
        /// Per-request deadline override.
        deadline_ms: Option<u64>,
        /// Fetch the server's counters instead of analyzing.
        stats: bool,
        /// Fetch the `nadroid-serve-metrics/1` document as raw JSON.
        metrics: bool,
        /// Fetch the metrics document and render it as Prometheus-style
        /// exposition text.
        metrics_text: bool,
        /// Ask the server to shut down gracefully.
        shutdown: bool,
    },
    /// Validate that a file is well-formed JSON (or JSONL with
    /// `--lines`), using the same parser the pipeline ships. Lets CI
    /// gate access logs and trace files without external tooling.
    CheckJson {
        /// File to validate.
        path: String,
        /// Treat the file as JSONL: one JSON value per non-empty line.
        lines: bool,
        /// Require the top-level `schema` member to equal this exact
        /// string — on every line when `lines` is set. CI pins BENCH
        /// documents and the run ledger to their schemas with this.
        expect_schema: Option<String>,
    },
    /// Run-ledger operations (`nadroid-ledger/1`): record runs, list
    /// them, diff two of them under the noise model, gate regressions.
    Perf(PerfCommand),
    /// Print usage.
    Help,
}

/// A `nadroid perf` subcommand. All variants read or write the run
/// ledger, `Result/ledger.jsonl` unless `--ledger` overrides it; see
/// docs/observability.md for the record schema and diff semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfCommand {
    /// Append one record: a fresh 27-app suite measurement, or a
    /// conversion of an existing `BENCH_*.json` document.
    Record {
        /// BENCH file to convert (`nadroid-timing/*`,
        /// `nadroid-serve-bench/*`, or `nadroid-confirm-bench/*`);
        /// `None` measures the suite afresh.
        from: Option<String>,
        /// Override the record kind (`timing`, `serve_bench`, `suite`,
        /// `ci`, `confirm`). Defaults to `suite` for fresh measurements
        /// and to the source driver's kind for conversions.
        kind: Option<String>,
        /// Free-form annotation stored on the record.
        note: Option<String>,
        /// Ledger path override.
        ledger: Option<String>,
    },
    /// Print one summary line per ledger record.
    List {
        /// Ledger path override.
        ledger: Option<String>,
    },
    /// Noise-aware comparison of two ledger records.
    Diff {
        /// Baseline selector: `last`, `prev`, 1-based index, or `-N`.
        base: String,
        /// Current-record selector, same syntax.
        current: String,
        /// Extra relative effect size required of latency moves, on
        /// top of the histogram quantization bound (raw user string,
        /// validated at parse time; default 0.05).
        min_effect: Option<String>,
        /// Ledger path override.
        ledger: Option<String>,
    },
    /// Regression gate: nonzero exit on any timing regression beyond
    /// the noise model or any unacknowledged counter/population drift.
    Gate {
        /// Baseline: a `BENCH_*.json` path or a ledger selector.
        against: String,
        /// Current-record ledger selector; `None` measures the suite
        /// afresh (the same workload `BENCH_timing.json` records).
        current: Option<String>,
        /// Also append the current record to the ledger.
        record: bool,
        /// Extra relative effect size for latency moves, as in
        /// `perf diff` (raw user string, validated at parse time).
        min_effect: Option<String>,
        /// Ledger path override.
        ledger: Option<String>,
    },
}

/// A CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

/// Usage text.
pub const USAGE: &str = "\
nadroid — static UAF ordering-violation detector for Android app models

USAGE:
    nadroid analyze <app.dsl> [--validate] [--sound-only] [--k <N>] [--json]
                              [--baseline <file>] [--update-baseline]
                              [--trace <file>] [--report <file>]
                              [--provenance <file>] [--stats]
                              [--mhp-preprune] [--threads <N>]
    nadroid explain <app.dsl> [<warning-id>]
    nadroid confirm <app.dsl> [<warning-id>] [--all] [--json]
                    [--threads <N>] [--provenance <file>]
    nadroid replay  <app.dsl> <schedule> [--id <warning-id>]
    nadroid nosleep <app.dsl>
    nadroid deva    <app.dsl>
    nadroid dot     <app.dsl>
    nadroid serve   [--addr <host:port>] [--workers <N>] [--threads <N>]
                    [--cache-bytes <B>] [--deadline-ms <D>]
                    [--access-log <file>] [--slow-us <T>] [--log-sample <N>]
    nadroid request [<app.dsl>] [--addr <host:port>] [--explain]
                    [--confirm] [--id <warning-id>] [--k <N>]
                    [--deadline-ms <D>] [--stats] [--metrics]
                    [--metrics-text] [--shutdown]
    nadroid check-json <file> [--lines] [--expect-schema <name>]
    nadroid perf record [--from <BENCH.json>] [--kind <k>] [--note <s>]
    nadroid perf list
    nadroid perf diff <a> <b> [--min-effect <frac>]
    nadroid perf gate --against <ref> [--current <sel>] [--record]
                      [--min-effect <frac>]

`analyze` may be omitted when the first argument is a flag or a .dsl
file: `nadroid --trace out.json app.dsl`.

SERVING (see docs/serving.md):
    `serve` runs a concurrent analysis daemon: a bounded worker pool
    with admission control, a content-addressed result cache (warm
    requests are a lookup, not a re-solve), and per-request deadlines.
    `request` is the matching client; repeated requests for the same
    app and options report `cached: true`. Every response carries a
    server-minted `request id` (also printed by `request`) that links
    it to the server's access log and slow-request traces.

SERVE TELEMETRY (see docs/observability.md):
    --access-log <f>  JSONL access log: one line per request with id,
                      endpoint, outcome, queue/service micros, cache
                      key, and thread count (sample with --log-sample)
    --slow-us <T>     capture the full span tree of any request whose
                      service time is >= T microseconds, written as
                      slow-<id>.trace.json next to the access log
    --metrics         (on `request`) fetch the nadroid-serve-metrics/1
                      JSON document: counters, rolling 1s/10s/60s rps
                      and error-rate windows, per-endpoint latency and
                      queue-wait histograms with percentile readouts
    --metrics-text    same data, rendered Prometheus-style
    check-json <f>    validate JSON (or JSONL with --lines) with the
                      in-repo parser — CI gates logs/traces with it;
                      --expect-schema <name> additionally pins the
                      top-level `schema` member (every line in JSONL)

RUN LEDGER (see docs/observability.md):
    `perf` manages the append-only run ledger (nadroid-ledger/1 JSONL,
    default Result/ledger.jsonl; override with --ledger <file>). Each
    record carries an environment fingerprint, wall/CPU and per-phase
    timings, the deterministic counters, histogram snapshots, and the
    per-app warning-population digests. Record selectors are `last`,
    `prev`, a 1-based index from the oldest, or `-N` from the newest.
    perf record       append a record: a fresh 27-app suite
                      measurement, or --from <BENCH.json> to convert a
                      committed BENCH_timing/BENCH_serve document
    perf list         one summary line per ledger record
    perf diff <a> <b> compare two records: counters and populations
                      exactly, timings/latencies under the noise model
                      (histogram quantization bound + --min-effect)
    perf gate         diff --against <ref> (a BENCH_*.json path or a
                      selector) vs --current <sel> (default: a fresh
                      suite measurement); exits nonzero on regression
                      or unacknowledged drift, naming the exact
                      counter, percentile, or warning ids that moved;
                      --record also appends the current record

OBSERVABILITY (see docs/observability.md):
    --trace <file>    Chrome trace_event JSON — open in chrome://tracing
                      or https://ui.perfetto.dev
    --report <file>   flat JSON run-report: phase timings, counters
                      (incl. per-filter examined/killed), span aggregates
    --provenance <f>  nadroid-provenance/4 JSON: stable warning ids,
                      Datalog derivation trees, per-filter audit trail,
                      happens-before evidence, and the program hash
    --stats           append the span/metric tree to the text report
    --mhp-preprune    drop must-ordered (use-before-free) pairs before
                      the filters via the HB closure; shrinks the
                      potential count, so off by default
    --threads <N>     worker threads for the parallel phases (detection,
                      filtering, points-to planning, Datalog rules);
                      output is byte-identical at every N. Defaults to
                      the NADROID_THREADS environment variable, then 1

CONFIRMATION (see docs/confirm.md):
    `confirm` closes the static→dynamic loop: for each surviving
    warning it synthesizes schedules from the warning's evidence
    (directed, evidence-pruned search first; bounded full exploration
    as fallback) and classifies it `confirmed` (a minimized witness
    schedule is attached, replayable with `nadroid replay`),
    `infeasible` (proof that no interleaving within the model's bounds
    manifests the pair), or `unconfirmed` (budget exhausted). With a
    <warning-id> it probes that one warning (pruned ones included);
    --all / no id confirms every survivor. --json emits the
    nadroid-confirm/1 document; --provenance <f> writes the
    nadroid-provenance/4 document with verdicts attached. `replay`
    re-executes an emitted schedule in a fresh process and fails unless
    the NPE reproduces (and, with --id, matches that warning's sites).

`explain` prints each warning's racy-pair derivation tree, the verdict
and evidence of every filter that examined it, and the use/free thread
lineages. With no <warning-id> it explains every warning (pruned ones
included); ids are stable across reruns and printed by the drivers.
When a `<app>.provenance.json` sits next to the DSL file (write one
with `analyze --provenance`) and its recorded program hash matches the
DSL content, `explain` renders from it instead of re-running the
pipeline.
";

/// Parse command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the malformed argument.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter();
    let Some(cmd) = args.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "analyze" => parse_analyze(args),
        // Implicit analyze: a leading flag or .dsl path means the
        // subcommand was omitted (`nadroid --trace out.json app.dsl`).
        // Anything else is still an unknown-command error.
        first if first.starts_with("--") || first.ends_with(".dsl") => {
            parse_analyze(std::iter::once(first.to_owned()).chain(args))
        }
        "explain" => {
            let path = args
                .next()
                .ok_or_else(|| CliError("explain needs a file".into()))?;
            let warning_id = args.next();
            if let Some(extra) = args.next() {
                return Err(CliError(format!("unexpected argument `{extra}`")));
            }
            Ok(Command::Explain { path, warning_id })
        }
        "confirm" => parse_confirm(args),
        "replay" => {
            let mut path = None;
            let mut schedule = None;
            let mut warning_id = None;
            let mut args = args;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--id" => {
                        warning_id = Some(
                            args.next()
                                .ok_or_else(|| CliError("--id needs a warning id".into()))?,
                        );
                    }
                    other if !other.starts_with("--") && path.is_none() => {
                        path = Some(other.to_owned());
                    }
                    other if !other.starts_with("--") && schedule.is_none() => {
                        schedule = Some(other.to_owned());
                    }
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            let path = path.ok_or_else(|| CliError("replay needs a file".into()))?;
            let schedule = schedule
                .ok_or_else(|| CliError("replay needs a schedule (quote the token string)".into()))?;
            Ok(Command::Replay {
                path,
                schedule,
                warning_id,
            })
        }
        "serve" => parse_serve(args),
        "request" => parse_request(args),
        "check-json" => {
            let mut path = None;
            let mut lines = false;
            let mut expect_schema = None;
            let mut args = args;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--lines" => lines = true,
                    "--expect-schema" => {
                        expect_schema = Some(
                            args.next()
                                .ok_or_else(|| CliError("--expect-schema needs a name".into()))?,
                        );
                    }
                    other if !other.starts_with('-') && path.is_none() => {
                        path = Some(other.to_owned());
                    }
                    other => return Err(CliError(format!("unexpected argument `{other}`"))),
                }
            }
            let path = path.ok_or_else(|| CliError("check-json needs a file".into()))?;
            Ok(Command::CheckJson {
                path,
                lines,
                expect_schema,
            })
        }
        "perf" => parse_perf(args),
        "nosleep" | "deva" | "dot" => {
            let path = args
                .next()
                .ok_or_else(|| CliError(format!("{cmd} needs a file")))?;
            if let Some(extra) = args.next() {
                return Err(CliError(format!("unexpected argument `{extra}`")));
            }
            Ok(match cmd.as_str() {
                "nosleep" => Command::NoSleep { path },
                "deva" => Command::Deva { path },
                _ => Command::Dot { path },
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn parse_analyze(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    let mut args = args;
    let mut path = None;
    let mut validate = false;
    let mut sound_only = false;
    let mut k = 2u32;
    let mut json = false;
    let mut baseline = None;
    let mut update_baseline = false;
    let mut trace = None;
    let mut report = None;
    let mut provenance = None;
    let mut stats = false;
    let mut mhp_preprune = false;
    let mut threads = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--validate" => validate = true,
            "--sound-only" => sound_only = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--stats" => stats = true,
            "--mhp-preprune" => mhp_preprune = true,
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .ok_or_else(|| CliError("--baseline needs a file".into()))?,
                );
            }
            "--trace" => {
                trace = Some(
                    args.next()
                        .ok_or_else(|| CliError("--trace needs a file".into()))?,
                );
            }
            "--report" => {
                report = Some(
                    args.next()
                        .ok_or_else(|| CliError("--report needs a file".into()))?,
                );
            }
            "--provenance" => {
                provenance = Some(
                    args.next()
                        .ok_or_else(|| CliError("--provenance needs a file".into()))?,
                );
            }
            "--k" => {
                let v = args
                    .next()
                    .ok_or_else(|| CliError("--k needs a value".into()))?;
                k = v
                    .parse()
                    .map_err(|_| CliError(format!("bad k value `{v}`")))?;
            }
            "--threads" => {
                let v = args
                    .next()
                    .ok_or_else(|| CliError("--threads needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("bad thread count `{v}`")))?;
                if n == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
                threads = Some(n);
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    if update_baseline && baseline.is_none() {
        return Err(CliError("--update-baseline needs --baseline <file>".into()));
    }
    let path = path.ok_or_else(|| CliError("analyze needs a file".into()))?;
    Ok(Command::Analyze {
        path,
        validate,
        sound_only,
        k,
        json,
        baseline,
        update_baseline,
        trace,
        report,
        provenance,
        stats,
        mhp_preprune,
        threads,
    })
}

fn parse_serve(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    let mut args = args;
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut workers = 4usize;
    let mut threads = 1usize;
    let mut cache_bytes = 64usize << 20;
    let mut deadline_ms = None;
    let mut access_log = None;
    let mut slow_us = None;
    let mut log_sample = 1u64;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--access-log" => access_log = Some(value("--access-log")?),
            "--slow-us" => {
                let v = value("--slow-us")?;
                slow_us = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad slow threshold `{v}`")))?,
                );
            }
            "--log-sample" => {
                let v = value("--log-sample")?;
                log_sample = v
                    .parse()
                    .map_err(|_| CliError(format!("bad sample rate `{v}`")))?;
                if log_sample == 0 {
                    return Err(CliError("--log-sample must be at least 1".into()));
                }
            }
            "--workers" => {
                let v = value("--workers")?;
                workers = v
                    .parse()
                    .map_err(|_| CliError(format!("bad worker count `{v}`")))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                threads = v
                    .parse()
                    .map_err(|_| CliError(format!("bad thread count `{v}`")))?;
                if threads == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
            }
            "--cache-bytes" => {
                let v = value("--cache-bytes")?;
                cache_bytes = v
                    .parse()
                    .map_err(|_| CliError(format!("bad byte budget `{v}`")))?;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                deadline_ms = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad deadline `{v}`")))?,
                );
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(Command::Serve {
        addr,
        workers,
        threads,
        cache_bytes,
        deadline_ms,
        access_log,
        slow_us,
        log_sample,
    })
}

fn parse_request(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    let mut args = args;
    let mut path = None;
    let mut addr = "127.0.0.1:7911".to_owned();
    let mut explain = false;
    let mut confirm = false;
    let mut id = None;
    let mut k = 2u32;
    let mut deadline_ms = None;
    let mut stats = false;
    let mut metrics = false;
    let mut metrics_text = false;
    let mut shutdown = false;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr")?,
            "--explain" => explain = true,
            "--confirm" => confirm = true,
            "--stats" => stats = true,
            "--metrics" => metrics = true,
            "--metrics-text" => metrics_text = true,
            "--shutdown" => shutdown = true,
            "--id" => {
                id = Some(value("--id")?);
                explain = true;
            }
            "--k" => {
                let v = value("--k")?;
                k = v
                    .parse()
                    .map_err(|_| CliError(format!("bad k value `{v}`")))?;
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                deadline_ms = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad deadline `{v}`")))?,
                );
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    if path.is_none() && !stats && !metrics && !metrics_text && !shutdown {
        return Err(CliError(
            "request needs a file (or --stats / --metrics / --shutdown)".into(),
        ));
    }
    if confirm && explain {
        return Err(CliError("--confirm conflicts with --explain/--id".into()));
    }
    Ok(Command::Request {
        path,
        addr,
        explain,
        confirm,
        id,
        k,
        deadline_ms,
        stats,
        metrics,
        metrics_text,
        shutdown,
    })
}

fn parse_perf(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    const PERF_USAGE: &str =
        "perf needs a subcommand: record | list | diff <a> <b> | gate --against <ref>";
    let mut args = args;
    let Some(sub) = args.next() else {
        return Err(CliError(PERF_USAGE.into()));
    };
    let allowed: &[&str] = match sub.as_str() {
        "record" => &["--from", "--kind", "--note", "--ledger"],
        "list" => &["--ledger"],
        "diff" => &["--min-effect", "--ledger"],
        "gate" => &["--against", "--current", "--record", "--min-effect", "--ledger"],
        other => {
            return Err(CliError(format!(
                "unknown perf subcommand `{other}`\n{PERF_USAGE}"
            )))
        }
    };
    let mut positionals: Vec<String> = Vec::new();
    let mut from = None;
    let mut kind = None;
    let mut note = None;
    let mut ledger_over = None;
    let mut against = None;
    let mut current = None;
    let mut record = false;
    let mut min_effect = None;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        if a.starts_with('-') && !allowed.contains(&a.as_str()) {
            return Err(CliError(format!(
                "unexpected argument `{a}` for `perf {sub}`"
            )));
        }
        match a.as_str() {
            "--from" => from = Some(value("--from")?),
            "--kind" => {
                let v = value("--kind")?;
                ledger::Kind::from_str(&v).map_err(CliError::from)?;
                kind = Some(v);
            }
            "--note" => note = Some(value("--note")?),
            "--ledger" => ledger_over = Some(value("--ledger")?),
            "--against" => against = Some(value("--against")?),
            "--current" => current = Some(value("--current")?),
            "--record" => record = true,
            "--min-effect" => {
                let v = value("--min-effect")?;
                let parsed: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("bad min effect `{v}`")))?;
                if !parsed.is_finite() || parsed < 0.0 {
                    return Err(CliError(format!(
                        "min effect must be a non-negative fraction, got `{v}`"
                    )));
                }
                min_effect = Some(v);
            }
            other => positionals.push(other.to_owned()),
        }
    }
    let no_positionals = |positionals: &[String]| -> Result<(), CliError> {
        match positionals.first() {
            Some(extra) => Err(CliError(format!("unexpected argument `{extra}`"))),
            None => Ok(()),
        }
    };
    match sub.as_str() {
        "record" => {
            no_positionals(&positionals)?;
            Ok(Command::Perf(PerfCommand::Record {
                from,
                kind,
                note,
                ledger: ledger_over,
            }))
        }
        "list" => {
            no_positionals(&positionals)?;
            Ok(Command::Perf(PerfCommand::List { ledger: ledger_over }))
        }
        "diff" => {
            if positionals.len() != 2 {
                return Err(CliError(
                    "perf diff needs two selectors: perf diff <a> <b>".into(),
                ));
            }
            let mut it = positionals.into_iter();
            Ok(Command::Perf(PerfCommand::Diff {
                base: it.next().expect("length checked"),
                current: it.next().expect("length checked"),
                min_effect,
                ledger: ledger_over,
            }))
        }
        _ => {
            no_positionals(&positionals)?;
            let against =
                against.ok_or_else(|| CliError("perf gate needs --against <ref>".into()))?;
            Ok(Command::Perf(PerfCommand::Gate {
                against,
                current,
                record,
                min_effect,
                ledger: ledger_over,
            }))
        }
    }
}

fn parse_confirm(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    let mut args = args;
    let mut path = None;
    let mut warning_id = None;
    let mut all = false;
    let mut json = false;
    let mut threads = None;
    let mut provenance = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => all = true,
            "--json" => json = true,
            "--threads" => {
                threads = Some(
                    args.next()
                        .ok_or_else(|| CliError("--threads needs a count".into()))?
                        .parse()
                        .map_err(|e| CliError(format!("bad --threads value: {e}")))?,
                );
            }
            "--provenance" => {
                provenance = Some(
                    args.next()
                        .ok_or_else(|| CliError("--provenance needs a file".into()))?,
                );
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other if !other.starts_with('-') && warning_id.is_none() => {
                warning_id = Some(other.to_owned());
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| CliError("confirm needs a file".into()))?;
    if all && warning_id.is_some() {
        return Err(CliError(
            "--all conflicts with an explicit warning id".into(),
        ));
    }
    if provenance.is_some() && warning_id.is_some() {
        return Err(CliError(
            "--provenance needs the full batch (drop the warning id)".into(),
        ));
    }
    Ok(Command::Confirm {
        path,
        warning_id,
        json,
        threads,
        provenance,
    })
}

fn load(path: &str) -> Result<Program, CliError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    parse_program(&src).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Execute a command, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable or unparsable inputs.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Analyze {
            path,
            validate,
            sound_only,
            k,
            json,
            baseline,
            update_baseline,
            trace,
            report,
            provenance,
            stats,
            mhp_preprune,
            threads,
        } => {
            let program = load(path)?;
            // Any observability output wants a recorder installed for the
            // duration of the analysis; the Datalog crosscheck rides along
            // so rule-level engine spans appear in the capture.
            let observing = trace.is_some() || report.is_some() || *stats;
            let config = AnalysisConfig {
                k: *k,
                unsound_filters: if *sound_only {
                    Vec::new()
                } else {
                    FilterKind::unsound().to_vec()
                },
                datalog_crosscheck: observing,
                mhp_preprune: *mhp_preprune,
                ..AnalysisConfig::default()
            };
            let config = match threads {
                Some(n) => AnalysisConfig { threads: *n, ..config },
                None => config,
            };
            let recorder = nadroid_obs::Recorder::new();
            let analysis = {
                let _guard = observing.then(|| recorder.install());
                analyze(&program, &config)
            };
            if let Some(trace_path) = trace {
                std::fs::write(trace_path, recorder.chrome_trace())
                    .map_err(|e| CliError(format!("cannot write {trace_path}: {e}")))?;
            }
            if let Some(report_path) = report {
                std::fs::write(report_path, nadroid_core::render_run_report(&analysis, &recorder))
                    .map_err(|e| CliError(format!("cannot write {report_path}: {e}")))?;
            }
            if let Some(prov_path) = provenance {
                std::fs::write(prov_path, nadroid_core::render_provenance_json(&analysis))
                    .map_err(|e| CliError(format!("cannot write {prov_path}: {e}")))?;
            }

            // Baseline workflow: suppress already-acknowledged warnings.
            let mut suppressed = 0usize;
            let mut fresh = Vec::new();
            let rendered = analysis.rendered_survivors();
            if let Some(bl_path) = baseline {
                let known: std::collections::BTreeSet<String> =
                    match std::fs::read_to_string(bl_path) {
                        Ok(s) => s.lines().map(str::to_owned).collect(),
                        Err(_) => std::collections::BTreeSet::new(),
                    };
                for w in &rendered {
                    if known.contains(&nadroid_core::fingerprint(w)) {
                        suppressed += 1;
                    } else {
                        fresh.push(w.clone());
                    }
                }
                if *update_baseline {
                    let all: Vec<String> = rendered.iter().map(nadroid_core::fingerprint).collect();
                    std::fs::write(
                        bl_path,
                        all.join(
                            "
",
                        ) + "
",
                    )
                    .map_err(|e| CliError(format!("cannot write {bl_path}: {e}")))?;
                }
            }

            if *json {
                return Ok(nadroid_core::render_json(&analysis));
            }
            let validation =
                validate.then(|| analysis.validate_survivors(ExploreConfig::default()));
            let mut out = render_report(&analysis, validation.as_ref());
            if *stats {
                out.push('\n');
                out.push_str(&recorder.stats_tree());
            }
            if baseline.is_some() {
                out.push_str(&format!(
                    "
baseline: {suppressed} suppressed, {} new
",
                    fresh.len()
                ));
                for w in &fresh {
                    out.push_str(&format!(
                        "  NEW [{}] {}
",
                        w.pair_type, w.field
                    ));
                }
            }
            Ok(out)
        }
        Command::Explain { path, warning_id } => {
            // A provenance export next to the DSL file already holds
            // everything `explain` prints — render from it instead of
            // re-running the whole pipeline, but only when its recorded
            // program hash matches the current source content (mtimes
            // lie under copies, checkouts and touch(1)). A stale or
            // corrupt document falls through to a live solve.
            let program = load(path)?;
            let want_hash = nadroid_core::program_hash(&program);
            if let Some((prov_path, doc, schema)) = fresh_provenance_sibling(path, &want_hash) {
                if let Ok(text) =
                    nadroid_core::render_explain_from_json(&doc, warning_id.as_deref())
                {
                    // An older (still readable) document renders fine but
                    // predates newer sections — say so in one line rather
                    // than silently omitting them.
                    let stale = if schema == nadroid_core::PROVENANCE_SCHEMA {
                        String::new()
                    } else {
                        format!(
                            "note: {prov_path} uses schema {schema}; current is {}. \
                             Re-run `nadroid analyze --provenance` to refresh it.\n",
                            nadroid_core::PROVENANCE_SCHEMA
                        )
                    };
                    return Ok(format!(
                        "(from cached provenance: {prov_path})\n{stale}{text}"
                    ));
                }
            }
            let analysis = analyze(&program, &AnalysisConfig::default());
            Ok(nadroid_core::render_explain(
                &analysis,
                warning_id.as_deref(),
            ))
        }
        Command::Confirm {
            path,
            warning_id,
            json,
            threads,
            provenance,
        } => {
            let program = load(path)?;
            let config = match threads {
                Some(n) => AnalysisConfig {
                    threads: *n,
                    ..AnalysisConfig::default()
                },
                None => AnalysisConfig::default(),
            };
            let analysis = analyze(&program, &config);
            let cfg = nadroid_confirm::ConfirmConfig::default();
            if let Some(id) = warning_id {
                let one = match threads {
                    Some(n) => nadroid_par::with_threads(*n, || {
                        nadroid_confirm::confirm_by_id(&analysis, id, &cfg)
                    }),
                    None => nadroid_confirm::confirm_by_id(&analysis, id, &cfg),
                };
                let Some(r) = one else {
                    let mut out = format!("no warning with id {id}; known ids:\n");
                    for w in analysis.warnings() {
                        out.push_str(&format!(
                            "  {}\n",
                            nadroid_detector::warning_id(&program, analysis.threads(), w)
                        ));
                    }
                    return Ok(out);
                };
                if *json {
                    let mut tally = nadroid_confirm::Tally::default();
                    tally.add(r.confirmation.verdict);
                    let outcome = nadroid_confirm::ConfirmOutcome {
                        results: vec![r],
                        tally,
                    };
                    return Ok(nadroid_confirm::render_confirm_json(&analysis, &outcome));
                }
                return Ok(render_confirm_text(std::slice::from_ref(&r), None));
            }
            let outcome = match threads {
                Some(n) => nadroid_par::with_threads(*n, || {
                    nadroid_confirm::confirm_survivors(&analysis, &cfg)
                }),
                None => nadroid_confirm::confirm_survivors(&analysis, &cfg),
            };
            if let Some(prov_path) = provenance {
                let mut provs = analysis.warning_provenances();
                nadroid_confirm::attach_confirmations(&mut provs, &outcome);
                std::fs::write(
                    prov_path,
                    nadroid_core::render_provenance_json_with(&analysis, &provs),
                )
                .map_err(|e| CliError(format!("cannot write {prov_path}: {e}")))?;
            }
            if *json {
                return Ok(nadroid_confirm::render_confirm_json(&analysis, &outcome));
            }
            Ok(render_confirm_text(&outcome.results, Some(&outcome.tally)))
        }
        Command::Replay {
            path,
            schedule,
            warning_id,
        } => {
            let program = load(path)?;
            let steps = nadroid_dynamic::decode_schedule(schedule)
                .map_err(|e| CliError(format!("bad schedule: {e}")))?;
            let world = nadroid_dynamic::replay(&program, &steps);
            let Some(npe) = &world.npe else {
                return Err(CliError(format!(
                    "schedule replayed {} step(s) without an NPE",
                    steps.len()
                )));
            };
            let mut out = format!(
                "NPE reproduced at {} ({} step(s))\n",
                program.describe_instr(npe.at),
                steps.len()
            );
            if let Some(u) = npe.loaded_from {
                out.push_str(&format!("  null loaded at  {}\n", program.describe_instr(u)));
            }
            if let Some(f) = npe.freed_by {
                out.push_str(&format!("  null written at {}\n", program.describe_instr(f)));
            }
            if let Some(id) = warning_id {
                let analysis = analyze(&program, &AnalysisConfig::default());
                let w = analysis
                    .warnings()
                    .iter()
                    .find(|w| &nadroid_detector::warning_id(&program, analysis.threads(), w) == id)
                    .cloned()
                    .ok_or_else(|| CliError(format!("no warning with id {id}")))?;
                if npe.loaded_from != Some(w.use_access.instr)
                    || npe.freed_by != Some(w.free_access.instr)
                {
                    return Err(CliError(format!(
                        "NPE does not match warning {id}: expected use {} / free {}",
                        program.describe_instr(w.use_access.instr),
                        program.describe_instr(w.free_access.instr)
                    )));
                }
                out.push_str(&format!("  matches warning {id}\n"));
            }
            Ok(out)
        }
        Command::NoSleep { path } => {
            let program = load(path)?;
            let analysis = analyze(&program, &AnalysisConfig::default());
            let warnings = analysis.no_sleep_warnings();
            let mut out = format!("{} no-sleep warning(s)\n", warnings.len());
            for w in &warnings {
                out.push_str(&format!(
                    "  acquire at {}",
                    program.describe_instr(w.acquire.instr)
                ));
                if w.unordered_releases.is_empty() {
                    out.push_str(" — never released\n");
                } else {
                    out.push_str(&format!(
                        " — only racy releases at {}\n",
                        w.unordered_releases
                            .iter()
                            .map(|r| program.describe_instr(r.instr))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            Ok(out)
        }
        Command::Deva { path } => {
            let program = load(path)?;
            let warnings = nadroid_deva::run_deva(&program);
            let mut out = format!("DEvA: {} event anomaly warning(s)\n", warnings.len());
            for w in &warnings {
                out.push_str(&format!(
                    "  {} — use in {}, free in {}\n",
                    program.field(w.field).name(),
                    program.method(w.use_handler).name(),
                    program.method(w.free_handler).name()
                ));
            }
            Ok(out)
        }
        Command::Dot { path } => {
            let program = load(path)?;
            let threads = ThreadModel::build(&program);
            Ok(threads.to_dot(&program))
        }
        Command::Serve {
            addr,
            workers,
            threads,
            cache_bytes,
            deadline_ms,
            access_log,
            slow_us,
            log_sample,
        } => {
            let mut server = Server::start(ServeConfig {
                addr: addr.clone(),
                workers: *workers,
                threads: *threads,
                cache_bytes: *cache_bytes,
                queue_cap: workers.saturating_mul(4).max(4),
                default_deadline_ms: *deadline_ms,
                telemetry: nadroid_serve::TelemetryConfig {
                    access_log: access_log.clone(),
                    slow_us: *slow_us,
                    log_sample: *log_sample,
                },
                ..ServeConfig::default()
            })
            .map_err(|e| CliError(format!("cannot start server on {addr}: {e}")))?;
            // Announce readiness before blocking; scripts poll for this
            // line, and stdout is block-buffered when redirected.
            println!("nadroid-serve listening on {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let fields = server.run_until_shutdown();
            let mut out = String::from("final server stats:\n");
            for (name, value) in fields {
                out.push_str(&format!("  \"{name}\": {value}\n"));
            }
            Ok(out)
        }
        Command::CheckJson {
            path,
            lines,
            expect_schema,
        } => {
            let content = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            let check_schema = |v: &nadroid_core::JsonValue, loc: &str| -> Result<(), CliError> {
                let Some(want) = expect_schema else {
                    return Ok(());
                };
                match v.get("schema").and_then(nadroid_core::JsonValue::as_str) {
                    Some(got) if got == want => Ok(()),
                    Some(got) => Err(CliError(format!(
                        "{loc}: schema is `{got}`, expected `{want}`"
                    ))),
                    None => Err(CliError(format!(
                        "{loc}: missing top-level `schema` member (expected `{want}`)"
                    ))),
                }
            };
            let mut checked = 0usize;
            if *lines {
                for (i, line) in content.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let v = nadroid_core::parse_json(line)
                        .map_err(|e| CliError(format!("{path}:{}: {e}", i + 1)))?;
                    check_schema(&v, &format!("{path}:{}", i + 1))?;
                    checked += 1;
                }
            } else {
                let v = nadroid_core::parse_json(&content)
                    .map_err(|e| CliError(format!("{path}: {e}")))?;
                check_schema(&v, path)?;
                checked = 1;
            }
            let schema_note = expect_schema
                .as_deref()
                .map_or_else(String::new, |s| format!(", schema {s}"));
            Ok(format!("{path}: OK ({checked} JSON value(s){schema_note})\n"))
        }
        Command::Perf(perf) => run_perf(perf),
        Command::Request {
            path,
            addr,
            explain,
            confirm,
            id,
            k,
            deadline_ms,
            stats,
            metrics,
            metrics_text,
            shutdown,
        } => {
            let mut client = Client::connect(addr)
                .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
            let response = if *stats {
                client.stats()
            } else if *metrics || *metrics_text {
                client.metrics()
            } else if *shutdown {
                client.shutdown()
            } else {
                let path = path
                    .as_ref()
                    .expect("parse_request guarantees a path here");
                let program = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                let opts = AnalyzeOpts {
                    k: *k,
                    sound_only: false,
                    deadline_ms: *deadline_ms,
                };
                if *confirm {
                    client.confirm(&program, opts)
                } else if *explain {
                    client.explain(&program, id.as_deref(), opts)
                } else {
                    client.analyze(&program, opts)
                }
            }
            .map_err(CliError)?;
            let mut out = if *metrics_text {
                match &response {
                    Response::Metrics { json } => render_metrics_text(json)?,
                    other => render_response(other)?,
                }
            } else {
                render_response(&response)?
            };
            if let Some(rid) = client.last_request_id() {
                out.push_str(&format!("request id: {rid}\n"));
            }
            Ok(out)
        }
    }
}

fn ledger_path(over: Option<&str>) -> std::path::PathBuf {
    std::path::PathBuf::from(over.unwrap_or(ledger::DEFAULT_PATH))
}

fn diff_options(min_effect: Option<&str>) -> ledger::DiffOptions {
    let mut opts = ledger::DiffOptions::default();
    if let Some(parsed) = min_effect.and_then(|v| v.parse().ok()) {
        opts.min_effect = parsed;
    }
    opts
}

/// Convert a BENCH document on disk into a ledger record, dispatching
/// on its `schema`. Returns the record plus any structural violations
/// the converter found (thread-variant counters in a timing scale
/// curve) — `perf gate` treats those as failures in their own right.
fn record_from_bench_file(path: &str) -> Result<(ledger::Record, Vec<String>), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let doc = nadroid_core::parse_json(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    let schema = doc
        .get("schema")
        .and_then(nadroid_core::JsonValue::as_str)
        .ok_or_else(|| CliError(format!("{path}: missing top-level `schema`")))?;
    if schema.starts_with("nadroid-timing/") {
        ledger::record_from_bench_timing(&doc).map_err(|e| CliError(format!("{path}: {e}")))
    } else if schema.starts_with("nadroid-serve-bench/") {
        ledger::record_from_bench_serve(&doc)
            .map(|r| (r, Vec::new()))
            .map_err(|e| CliError(format!("{path}: {e}")))
    } else if schema.starts_with("nadroid-confirm-bench/") {
        ledger::record_from_bench_confirm(&doc)
            .map(|r| (r, Vec::new()))
            .map_err(|e| CliError(format!("{path}: {e}")))
    } else if schema.starts_with("nadroid-refute-bench/") {
        ledger::record_from_bench_refute(&doc)
            .map(|r| (r, Vec::new()))
            .map_err(|e| CliError(format!("{path}: {e}")))
    } else {
        Err(CliError(format!(
            "{path}: unsupported schema `{schema}` \
             (expected nadroid-timing/*, nadroid-serve-bench/*, nadroid-confirm-bench/*, \
             or nadroid-refute-bench/*)"
        )))
    }
}

fn run_perf(perf: &PerfCommand) -> Result<String, CliError> {
    let label = |records: &[ledger::Record], i: usize| {
        format!("#{} ({})", i + 1, records[i].kind.as_str())
    };
    match perf {
        PerfCommand::Record {
            from,
            kind,
            note,
            ledger: over,
        } => {
            let (mut rec, violations) = match from {
                Some(f) => {
                    let (mut rec, violations) = record_from_bench_file(f)?;
                    rec.note = format!("perf record --from {f}");
                    (rec, violations)
                }
                None => {
                    let mut rec = nadroid_bench::measure::suite_ledger_record(ledger::Kind::Suite);
                    rec.note = "perf record (fresh suite measurement)".to_string();
                    (rec, Vec::new())
                }
            };
            if let Some(k) = kind {
                rec.kind = ledger::Kind::from_str(k).map_err(CliError::from)?;
            }
            if let Some(n) = note {
                rec.note.clone_from(n);
            }
            let path = ledger_path(over.as_deref());
            ledger::append(&path, &rec).map_err(CliError::from)?;
            let count = ledger::read(&path).map_err(CliError::from)?.len();
            let mut out = format!(
                "appended to {} ({count} record(s)):\n{}\n",
                path.display(),
                rec.summary_line(count)
            );
            for v in &violations {
                out.push_str(&format!("  warning: {v}\n"));
            }
            Ok(out)
        }
        PerfCommand::List { ledger: over } => {
            let path = ledger_path(over.as_deref());
            let records = ledger::read(&path).map_err(CliError::from)?;
            let mut out = format!("{}: {} record(s)\n", path.display(), records.len());
            for (i, r) in records.iter().enumerate() {
                out.push_str(&r.summary_line(i + 1));
                out.push('\n');
            }
            Ok(out)
        }
        PerfCommand::Diff {
            base,
            current,
            min_effect,
            ledger: over,
        } => {
            let path = ledger_path(over.as_deref());
            let records = ledger::read(&path).map_err(CliError::from)?;
            let bi = ledger::select(records.len(), base).map_err(CliError::from)?;
            let ci = ledger::select(records.len(), current).map_err(CliError::from)?;
            let opts = diff_options(min_effect.as_deref());
            let deltas = ledger::diff(&records[bi], &records[ci], &opts);
            Ok(ledger::render_diff(
                &label(&records, bi),
                &label(&records, ci),
                &deltas,
            ))
        }
        PerfCommand::Gate {
            against,
            current,
            record,
            min_effect,
            ledger: over,
        } => {
            let path = ledger_path(over.as_deref());
            let opts = diff_options(min_effect.as_deref());
            // The baseline: a committed BENCH document, or a prior
            // ledger record. A baseline that is itself structurally
            // violated (thread-variant scale counters) fails outright.
            let (base, base_label) = if std::path::Path::new(against).is_file() {
                let (rec, violations) = record_from_bench_file(against)?;
                if !violations.is_empty() {
                    return Err(CliError(format!(
                        "FAIL: baseline {against} carries structural violation(s):\n  {}",
                        violations.join("\n  ")
                    )));
                }
                (rec, against.clone())
            } else {
                let records = ledger::read(&path).map_err(CliError::from)?;
                let i = ledger::select(records.len(), against).map_err(CliError::from)?;
                (records[i].clone(), label(&records, i))
            };
            // The current side: a chosen ledger record, or a fresh
            // measurement of the same workload the timing driver
            // records, so counters line up exactly with BENCH_timing.
            let (cur, cur_label, cur_violations) = match current {
                Some(sel) => {
                    let records = ledger::read(&path).map_err(CliError::from)?;
                    let i = ledger::select(records.len(), sel).map_err(CliError::from)?;
                    (records[i].clone(), label(&records, i), Vec::new())
                }
                None => {
                    let m = nadroid_bench::measure::measure_suite();
                    let doc = nadroid_core::parse_json(&m.json)
                        .map_err(|e| CliError(format!("fresh measurement JSON: {e}")))?;
                    let (mut rec, violations) =
                        ledger::record_from_bench_timing(&doc).map_err(CliError::from)?;
                    rec.kind = ledger::Kind::Ci;
                    rec.note = format!("perf gate --against {against}");
                    (rec, "fresh suite measurement".to_string(), violations)
                }
            };
            if *record {
                ledger::append(&path, &cur).map_err(CliError::from)?;
            }
            let verdict = ledger::gate(&base, &cur, &opts);
            let mut out = ledger::render_diff(&base_label, &cur_label, &verdict.deltas);
            for v in &cur_violations {
                out.push_str(&format!("  [violation  ] {v}\n"));
            }
            out.push_str(&verdict.summary());
            out.push('\n');
            if verdict.pass() && cur_violations.is_empty() {
                Ok(out)
            } else {
                Err(CliError(out))
            }
        }
    }
}

/// Render confirmation results for the terminal, mirroring the
/// confirmation section `explain` prints.
fn render_confirm_text(
    results: &[nadroid_confirm::WarningConfirmation],
    tally: Option<&nadroid_confirm::Tally>,
) -> String {
    let mut out = String::new();
    if let Some(t) = tally {
        out.push_str(&format!(
            "confirmed {}, unconfirmed {}, infeasible {} ({} warning(s))\n",
            t.confirmed,
            t.unconfirmed,
            t.infeasible,
            t.total()
        ));
    }
    for r in results {
        let c = &r.confirmation;
        out.push_str(&format!(
            "\nwarning {}\n  field:   {}\n  use at:  {}\n  free at: {}\n  verdict: {}\n  reason:  {}\n  states:  {}\n",
            r.id, r.field, r.use_site, r.free_site, c.verdict, c.reason, c.states_explored
        ));
        if let Some(at) = &c.npe_at {
            out.push_str(&format!("  npe at:  {at}\n"));
        }
        if let Some(s) = &c.schedule {
            out.push_str(&format!("  witness schedule:\n    {s}\n"));
        }
    }
    out
}

/// Render a server response for the terminal. Protocol-level outcomes
/// (`rejected`, `deadline exceeded`) are ordinary output; only server
/// errors and transport failures become a non-zero exit.
fn render_response(response: &Response) -> Result<String, CliError> {
    match response {
        Response::Analyze {
            app,
            cached,
            micros,
            summary,
            warnings,
        } => {
            let mut out = format!(
                "app: {app}\ncached: {cached}\nmicros: {micros}\n\
                 summary: potential={} after_sound={} after_unsound={}\n\
                 warnings: {}\n",
                summary.potential,
                summary.after_sound,
                summary.after_unsound,
                warnings.len()
            );
            for w in warnings {
                out.push_str(&format!("  {w}\n"));
            }
            Ok(out)
        }
        Response::Explain {
            cached,
            micros,
            text,
        } => Ok(format!("cached: {cached}\nmicros: {micros}\n{text}")),
        Response::Confirm {
            cached,
            micros,
            json,
        } => Ok(format!("cached: {cached}\nmicros: {micros}\n{json}")),
        Response::Stats { fields } => {
            let mut out = String::from("server stats:\n");
            for (name, value) in fields {
                out.push_str(&format!("  \"{name}\": {value}\n"));
            }
            Ok(out)
        }
        Response::Metrics { json } => Ok(format!("{json}\n")),
        Response::Shutdown => Ok("shutdown acknowledged\n".to_owned()),
        Response::Rejected { retry_after_ms } => {
            Ok(format!("rejected (retry after {retry_after_ms} ms)\n"))
        }
        Response::DeadlineExceeded { deadline_ms } => {
            Ok(format!("deadline exceeded ({deadline_ms} ms)\n"))
        }
        Response::Error { message } => Err(CliError(format!("server error: {message}"))),
    }
}

/// Render a `nadroid-serve-metrics/1` document as Prometheus-style
/// exposition text: one `name{labels} value` line per counter, window,
/// and histogram quantile.
fn render_metrics_text(json: &str) -> Result<String, CliError> {
    let doc = nadroid_core::parse_json(json)
        .map_err(|e| CliError(format!("malformed metrics document: {e}")))?;
    let num = |v: &nadroid_core::JsonValue| v.as_f64().unwrap_or(0.0);
    let mut out = String::from("# nadroid-serve-metrics/1\n");
    if let Some(v) = doc.get("uptime_secs") {
        out.push_str(&format!("nadroid_serve_uptime_seconds {}\n", num(v)));
    }
    if let Some(v) = doc.get("requests_total") {
        out.push_str(&format!("nadroid_serve_requests_total {}\n", num(v)));
    }
    if let Some(nadroid_core::JsonValue::Obj(members)) = doc.get("counters") {
        for (name, v) in members {
            out.push_str(&format!(
                "nadroid_serve_counter{{name=\"{name}\"}} {}\n",
                num(v)
            ));
        }
    }
    if let Some(nadroid_core::JsonValue::Obj(members)) = doc.get("windows") {
        for (name, v) in members {
            out.push_str(&format!(
                "nadroid_serve_window{{name=\"{name}\"}} {}\n",
                num(v)
            ));
        }
    }
    if let Some(nadroid_core::JsonValue::Obj(hists)) = doc.get("histograms") {
        for (series, h) in hists {
            for (field, quantile) in [
                ("p50_us", "0.50"),
                ("p90_us", "0.90"),
                ("p95_us", "0.95"),
                ("p99_us", "0.99"),
            ] {
                if let Some(v) = h.get(field) {
                    out.push_str(&format!(
                        "nadroid_serve_latency_us{{series=\"{series}\",quantile=\"{quantile}\"}} {}\n",
                        num(v)
                    ));
                }
            }
            if let Some(v) = h.get("count") {
                out.push_str(&format!(
                    "nadroid_serve_latency_us_count{{series=\"{series}\"}} {}\n",
                    num(v)
                ));
            }
            if let Some(v) = h.get("max_us") {
                out.push_str(&format!(
                    "nadroid_serve_latency_us_max{{series=\"{series}\"}} {}\n",
                    num(v)
                ));
            }
        }
    }
    Ok(out)
}

/// The `<app>.provenance.json` sibling of `path`, when it exists and
/// records `want_hash` as its `program_hash` — validation by content,
/// not mtime, so a document that merely *looks* newer than the DSL file
/// can never answer for a program whose text changed. The third element
/// is the document's recorded schema, so `explain` can note when the
/// sibling predates the current [`nadroid_core::PROVENANCE_SCHEMA`].
fn fresh_provenance_sibling(path: &str, want_hash: &str) -> Option<(String, String, String)> {
    let prov = std::path::Path::new(path).with_extension("provenance.json");
    let doc = std::fs::read_to_string(&prov).ok()?;
    let recorded = nadroid_core::parse_json(&doc).ok()?;
    if recorded
        .get("program_hash")
        .and_then(nadroid_core::JsonValue::as_str)
        != Some(want_hash)
    {
        return None;
    }
    let schema = recorded
        .get("schema")
        .and_then(nadroid_core::JsonValue::as_str)
        .unwrap_or("")
        .to_owned();
    Some((prov.to_string_lossy().into_owned(), doc, schema))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_analyze_flags() {
        let cmd = parse_args(args(&[
            "analyze",
            "app.dsl",
            "--validate",
            "--k",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                path: "app.dsl".into(),
                validate: true,
                sound_only: false,
                k: 3,
                json: true,
                baseline: None,
                update_baseline: false,
                trace: None,
                report: None,
                provenance: None,
                stats: false,
                mhp_preprune: false,
                threads: None,
            }
        );
        assert!(parse_args(args(&["analyze", "a.dsl", "--update-baseline"])).is_err());
    }

    #[test]
    fn parses_explain_and_provenance() {
        assert_eq!(
            parse_args(args(&["explain", "app.dsl"])).unwrap(),
            Command::Explain {
                path: "app.dsl".into(),
                warning_id: None,
            }
        );
        assert_eq!(
            parse_args(args(&["explain", "app.dsl", "w:0011223344556677"])).unwrap(),
            Command::Explain {
                path: "app.dsl".into(),
                warning_id: Some("w:0011223344556677".into()),
            }
        );
        assert!(parse_args(args(&["explain"])).is_err());
        assert!(parse_args(args(&["explain", "a.dsl", "w:1", "extra"])).is_err());

        match parse_args(args(&["analyze", "app.dsl", "--provenance", "p.json"])).unwrap() {
            Command::Analyze { provenance, .. } => {
                assert_eq!(provenance.as_deref(), Some("p.json"));
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        assert!(parse_args(args(&["analyze", "a.dsl", "--provenance"])).is_err());
    }

    #[test]
    fn parses_confirm_and_replay() {
        assert_eq!(
            parse_args(args(&["confirm", "app.dsl"])).unwrap(),
            Command::Confirm {
                path: "app.dsl".into(),
                warning_id: None,
                json: false,
                threads: None,
                provenance: None,
            }
        );
        assert_eq!(
            parse_args(args(&[
                "confirm",
                "app.dsl",
                "w:0011223344556677",
                "--json",
                "--threads",
                "2",
            ]))
            .unwrap(),
            Command::Confirm {
                path: "app.dsl".into(),
                warning_id: Some("w:0011223344556677".into()),
                json: true,
                threads: Some(2),
                provenance: None,
            }
        );
        assert!(parse_args(args(&["confirm"])).is_err());
        assert!(parse_args(args(&["confirm", "a.dsl", "w:1", "--all"])).is_err());
        assert!(parse_args(args(&["confirm", "a.dsl", "w:1", "--provenance", "p"])).is_err());
        assert!(parse_args(args(&["confirm", "a.dsl", "--threads", "zero"])).is_err());

        assert_eq!(
            parse_args(args(&["replay", "app.dsl", "l0.onCreate a0.0", "--id", "w:1"])).unwrap(),
            Command::Replay {
                path: "app.dsl".into(),
                schedule: "l0.onCreate a0.0".into(),
                warning_id: Some("w:1".into()),
            }
        );
        assert!(parse_args(args(&["replay", "app.dsl"])).is_err());
        assert!(parse_args(args(&["replay"])).is_err());
    }

    #[test]
    fn confirm_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("nadroid_cli_confirm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.dsl");
        std::fs::write(
            &path,
            r#"
            app CliConfirm
            activity Console {
                field bound: Console
                cb onCreate { bind this }
                cb onServiceConnected { bound = new Console }
                cb onServiceDisconnected { bound = null }
                cb onCreateContextMenu { use bound }
            }
            "#,
        )
        .unwrap();
        let p = path.to_string_lossy().to_string();

        let text = run(&Command::Confirm {
            path: p.clone(),
            warning_id: None,
            json: false,
            threads: None,
            provenance: None,
        })
        .unwrap();
        assert!(text.contains("verdict: confirmed"), "{text}");
        assert!(text.contains("witness schedule:"), "{text}");

        // The printed schedule replays to the NPE in a fresh command,
        // and matches the warning it confirms.
        let schedule = text
            .lines()
            .skip_while(|l| !l.contains("witness schedule:"))
            .nth(1)
            .unwrap()
            .trim()
            .to_owned();
        let id = text
            .lines()
            .find_map(|l| l.strip_prefix("warning "))
            .unwrap()
            .to_owned();
        let replayed = run(&Command::Replay {
            path: p.clone(),
            schedule: schedule.clone(),
            warning_id: Some(id.clone()),
        })
        .unwrap();
        assert!(replayed.contains("NPE reproduced"), "{replayed}");
        assert!(replayed.contains(&format!("matches warning {id}")), "{replayed}");

        // A truncated schedule fails replay instead of passing silently.
        let first = schedule.split_whitespace().next().unwrap().to_owned();
        assert!(run(&Command::Replay {
            path: p.clone(),
            schedule: first,
            warning_id: None,
        })
        .is_err());

        // JSON mode emits the nadroid-confirm/1 document; the attached
        // provenance export carries the verdicts.
        let prov_path = dir.join("confirm.provenance.json");
        let json = run(&Command::Confirm {
            path: p.clone(),
            warning_id: None,
            json: true,
            threads: Some(2),
            provenance: Some(prov_path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(json.contains("\"schema\": \"nadroid-confirm/1\""), "{json}");
        let prov = std::fs::read_to_string(&prov_path).unwrap();
        assert!(prov.contains("\"schema\": \"nadroid-provenance/4\""), "{prov}");
        assert!(prov.contains("\"verdict\": \"confirmed\""), "{prov}");

        // Unknown ids list the known ones instead of erroring.
        let miss = run(&Command::Confirm {
            path: p,
            warning_id: Some("w:0000000000000000".into()),
            json: false,
            threads: None,
            provenance: None,
        })
        .unwrap();
        assert!(miss.contains("no warning with id"), "{miss}");
        assert!(miss.contains(&id), "{miss}");
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_args(args(&["analyze", "app.dsl", "--wat"])).is_err());
        assert!(parse_args(args(&["frobnicate"])).is_err());
        assert!(parse_args(args(&["analyze"])).is_err());
        assert!(parse_args(args(&["dot"])).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(Vec::new()).unwrap(), Command::Help);
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn end_to_end_on_a_temp_file() {
        let dir = std::env::temp_dir().join("nadroid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.dsl");
        std::fs::write(
            &path,
            r#"
            app Cli
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let p = path.to_string_lossy().to_string();

        let report = run(&Command::Analyze {
            path: p.clone(),
            validate: true,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
            mhp_preprune: false,
            threads: None,
        })
        .unwrap();
        assert!(report.contains("nAdroid report for `Cli`"), "{report}");
        assert!(report.contains("CONFIRMED"), "{report}");

        let dot = run(&Command::Dot { path: p.clone() }).unwrap();
        assert!(dot.starts_with("digraph threadification"), "{dot}");
        assert!(dot.contains("M.onClick"), "{dot}");

        let deva = run(&Command::Deva { path: p.clone() }).unwrap();
        assert!(deva.contains("1 event anomaly"), "{deva}");

        let ns = run(&Command::NoSleep { path: p }).unwrap();
        assert!(ns.contains("0 no-sleep"), "{ns}");
    }

    #[test]
    fn baseline_suppresses_known_warnings() {
        let dir = std::env::temp_dir().join("nadroid_cli_baseline");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app B
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let bl = dir.join("baseline.txt");
        let _ = std::fs::remove_file(&bl);
        let analyze_cmd = |update| Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: Some(bl.to_string_lossy().into_owned()),
            update_baseline: update,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
            mhp_preprune: false,
            threads: None,
        };
        // First run: everything is new; write the baseline.
        let out = run(&analyze_cmd(true)).unwrap();
        assert!(out.contains("baseline: 0 suppressed, 1 new"), "{out}");
        // Second run: the known warning is suppressed.
        let out = run(&analyze_cmd(false)).unwrap();
        assert!(out.contains("baseline: 1 suppressed, 0 new"), "{out}");
    }

    #[test]
    fn json_output_mode() {
        let dir = std::env::temp_dir().join("nadroid_cli_json");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            "app J
activity M { cb onClick { } }",
        )
        .unwrap();
        let out = run(&Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: true,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
            mhp_preprune: false,
            threads: None,
        })
        .unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"app\": \"J\""), "{out}");
    }

    #[test]
    fn implicit_analyze_accepts_flags_and_dsl_paths() {
        let cmd = parse_args(args(&["--trace", "out.json", "app.dsl"])).unwrap();
        match cmd {
            Command::Analyze { path, trace, .. } => {
                assert_eq!(path, "app.dsl");
                assert_eq!(trace.as_deref(), Some("out.json"));
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        let cmd = parse_args(args(&["app.dsl", "--stats"])).unwrap();
        match cmd {
            Command::Analyze { path, stats, .. } => {
                assert_eq!(path, "app.dsl");
                assert!(stats);
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        // Bare unknown words are still unknown commands.
        assert!(parse_args(args(&["frobnicate"])).is_err());
        assert!(parse_args(args(&["--trace"])).is_err(), "--trace needs a file");
    }

    #[test]
    fn trace_report_and_stats_outputs() {
        let dir = std::env::temp_dir().join("nadroid_cli_obs");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app Obs
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let trace_path = dir.join("trace.json");
        let report_path = dir.join("report.json");
        let out = run(&Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            report: Some(report_path.to_string_lossy().into_owned()),
            provenance: None,
            stats: true,
            mhp_preprune: false,
            threads: None,
        })
        .unwrap();
        assert!(out.contains("run stats:"), "--stats appends the tree:\n{out}");
        assert!(out.contains("analyze"), "{out}");
        // The crosscheck solve feeds the engine gauges: throughput plus
        // the provenance-arena footprint (zero when recording is off).
        assert!(out.contains("datalog.tuples_per_sec"), "{out}");
        assert!(out.contains("datalog.prov_arena_bytes"), "{out}");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        // The four pipeline phases plus detection sub-phases and the
        // engine crosscheck all appear as spans.
        for name in ["analyze", "modeling", "detection", "pointsto", "escape", "detect", "filtering"] {
            assert!(trace.contains(&format!("\"name\": \"{name}\"")), "missing {name}:\n{trace}");
        }
        assert!(trace.contains("datalog.rule:vP"), "rule-level spans:\n{trace}");

        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"app\": \"Obs\""), "{report}");
        assert!(report.contains("\"filter.MHB.killed\""), "{report}");
        assert!(report.contains("\"pointsto.queue_pops\""), "{report}");
    }

    #[test]
    fn parses_serve_and_request() {
        assert_eq!(
            parse_args(args(&["serve"])).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7911".into(),
                workers: 4,
                threads: 1,
                cache_bytes: 64 << 20,
                deadline_ms: None,
                access_log: None,
                slow_us: None,
                log_sample: 1,
            }
        );
        assert_eq!(
            parse_args(args(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache-bytes",
                "1024",
                "--deadline-ms",
                "500",
                "--access-log",
                "access.jsonl",
                "--slow-us",
                "250000",
                "--log-sample",
                "10",
            ]))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                threads: 1,
                cache_bytes: 1024,
                deadline_ms: Some(500),
                access_log: Some("access.jsonl".into()),
                slow_us: Some(250_000),
                log_sample: 10,
            }
        );
        assert!(parse_args(args(&["serve", "--workers"])).is_err());
        assert!(parse_args(args(&["serve", "app.dsl"])).is_err());
        assert!(parse_args(args(&["serve", "--log-sample", "0"])).is_err());
        assert!(parse_args(args(&["serve", "--slow-us", "soon"])).is_err());

        assert_eq!(
            parse_args(args(&["request", "app.dsl", "--addr", "127.0.0.1:9", "--k", "3"]))
                .unwrap(),
            Command::Request {
                path: Some("app.dsl".into()),
                addr: "127.0.0.1:9".into(),
                explain: false,
                confirm: false,
                id: None,
                k: 3,
                deadline_ms: None,
                stats: false,
                metrics: false,
                metrics_text: false,
                shutdown: false,
            }
        );
        // --id implies --explain; --stats/--shutdown need no file.
        match parse_args(args(&["request", "app.dsl", "--id", "w:0011223344556677"])).unwrap() {
            Command::Request { explain, id, .. } => {
                assert!(explain);
                assert_eq!(id.as_deref(), Some("w:0011223344556677"));
            }
            other => panic!("expected Request, got {other:?}"),
        }
        assert!(matches!(
            parse_args(args(&["request", "--stats"])).unwrap(),
            Command::Request { stats: true, .. }
        ));
        assert!(matches!(
            parse_args(args(&["request", "--shutdown"])).unwrap(),
            Command::Request { shutdown: true, .. }
        ));
        // --metrics/--metrics-text need no file either.
        assert!(matches!(
            parse_args(args(&["request", "--metrics"])).unwrap(),
            Command::Request { metrics: true, .. }
        ));
        assert!(matches!(
            parse_args(args(&["request", "--metrics-text"])).unwrap(),
            Command::Request {
                metrics_text: true,
                ..
            }
        ));
        assert!(matches!(
            parse_args(args(&["request", "app.dsl", "--confirm"])).unwrap(),
            Command::Request { confirm: true, .. }
        ));
        assert!(
            parse_args(args(&["request", "app.dsl", "--confirm", "--explain"])).is_err(),
            "--confirm conflicts with --explain"
        );
        assert!(parse_args(args(&["request"])).is_err(), "needs a file");

        assert_eq!(
            parse_args(args(&["check-json", "f.json", "--lines"])).unwrap(),
            Command::CheckJson {
                path: "f.json".into(),
                lines: true,
                expect_schema: None,
            }
        );
        assert_eq!(
            parse_args(args(&[
                "check-json",
                "ledger.jsonl",
                "--lines",
                "--expect-schema",
                "nadroid-ledger/1",
            ]))
            .unwrap(),
            Command::CheckJson {
                path: "ledger.jsonl".into(),
                lines: true,
                expect_schema: Some("nadroid-ledger/1".into()),
            }
        );
        assert!(parse_args(args(&["check-json"])).is_err(), "needs a file");
        assert!(
            parse_args(args(&["check-json", "f.json", "--expect-schema"])).is_err(),
            "--expect-schema needs a name"
        );
    }

    #[test]
    fn parses_perf_subcommands() {
        assert_eq!(
            parse_args(args(&["perf", "record", "--from", "BENCH_timing.json"])).unwrap(),
            Command::Perf(PerfCommand::Record {
                from: Some("BENCH_timing.json".into()),
                kind: None,
                note: None,
                ledger: None,
            })
        );
        assert_eq!(
            parse_args(args(&[
                "perf", "record", "--kind", "ci", "--note", "nightly", "--ledger", "l.jsonl",
            ]))
            .unwrap(),
            Command::Perf(PerfCommand::Record {
                from: None,
                kind: Some("ci".into()),
                note: Some("nightly".into()),
                ledger: Some("l.jsonl".into()),
            })
        );
        assert_eq!(
            parse_args(args(&["perf", "list"])).unwrap(),
            Command::Perf(PerfCommand::List { ledger: None })
        );
        assert_eq!(
            parse_args(args(&["perf", "diff", "prev", "last", "--min-effect", "0.1"])).unwrap(),
            Command::Perf(PerfCommand::Diff {
                base: "prev".into(),
                current: "last".into(),
                min_effect: Some("0.1".into()),
                ledger: None,
            })
        );
        assert_eq!(
            parse_args(args(&[
                "perf",
                "gate",
                "--against",
                "BENCH_timing.json",
                "--record",
            ]))
            .unwrap(),
            Command::Perf(PerfCommand::Gate {
                against: "BENCH_timing.json".into(),
                current: None,
                record: true,
                min_effect: None,
                ledger: None,
            })
        );
        // Malformed invocations are rejected at parse time.
        assert!(parse_args(args(&["perf"])).is_err(), "needs a subcommand");
        assert!(parse_args(args(&["perf", "frobnicate"])).is_err());
        assert!(parse_args(args(&["perf", "diff", "last"])).is_err(), "two selectors");
        assert!(parse_args(args(&["perf", "gate"])).is_err(), "needs --against");
        assert!(parse_args(args(&["perf", "record", "--kind", "wat"])).is_err());
        assert!(parse_args(args(&["perf", "diff", "a", "b", "--min-effect", "-1"])).is_err());
        assert!(
            parse_args(args(&["perf", "list", "--from", "x"])).is_err(),
            "--from is not a list flag"
        );
    }

    #[test]
    fn check_json_validates_documents_and_jsonl() {
        let dir = std::env::temp_dir().join("nadroid_cli_checkjson");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, "{\"a\": [1, 2, 3]}\n").unwrap();
        let out = run(&Command::CheckJson {
            path: good.to_string_lossy().into_owned(),
            lines: false,
            expect_schema: None,
        })
        .unwrap();
        assert!(out.contains("OK (1 JSON value(s))"), "{out}");

        let jsonl = dir.join("log.jsonl");
        std::fs::write(&jsonl, "{\"id\":\"r1\"}\n\n{\"id\":\"r2\"}\n").unwrap();
        let out = run(&Command::CheckJson {
            path: jsonl.to_string_lossy().into_owned(),
            lines: true,
            expect_schema: None,
        })
        .unwrap();
        assert!(out.contains("OK (2 JSON value(s))"), "{out}");

        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"ok\":1}\nnot json\n").unwrap();
        let err = run(&Command::CheckJson {
            path: bad.to_string_lossy().into_owned(),
            lines: true,
            expect_schema: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains(":2:"), "line number in: {err}");
    }

    #[test]
    fn check_json_pins_schemas() {
        let dir = std::env::temp_dir().join("nadroid_cli_expect_schema");
        std::fs::create_dir_all(&dir).unwrap();

        // A whole-document schema match, mismatch, and absence.
        let doc = dir.join("bench.json");
        std::fs::write(&doc, "{\"schema\": \"nadroid-timing/4\", \"apps\": 27}\n").unwrap();
        let check = |path: &std::path::Path, lines: bool, want: &str| {
            run(&Command::CheckJson {
                path: path.to_string_lossy().into_owned(),
                lines,
                expect_schema: Some(want.to_owned()),
            })
        };
        let out = check(&doc, false, "nadroid-timing/4").unwrap();
        assert!(out.contains("OK (1 JSON value(s), schema nadroid-timing/4)"), "{out}");
        let err = check(&doc, false, "nadroid-timing/3").unwrap_err().to_string();
        assert!(err.contains("schema is `nadroid-timing/4`"), "{err}");
        assert!(err.contains("expected `nadroid-timing/3`"), "{err}");

        let bare = dir.join("bare.json");
        std::fs::write(&bare, "{\"apps\": 27}\n").unwrap();
        let err = check(&bare, false, "nadroid-timing/4").unwrap_err().to_string();
        assert!(err.contains("missing top-level `schema`"), "{err}");

        // JSONL: every line is pinned, and the failing line is named.
        let ledger = dir.join("ledger.jsonl");
        std::fs::write(
            &ledger,
            "{\"schema\": \"nadroid-ledger/1\", \"kind\": \"ci\"}\n\
             {\"schema\": \"nadroid-ledger/2\", \"kind\": \"ci\"}\n",
        )
        .unwrap();
        let err = check(&ledger, true, "nadroid-ledger/1").unwrap_err().to_string();
        assert!(err.contains(":2:"), "failing line named: {err}");
        assert!(err.contains("schema is `nadroid-ledger/2`"), "{err}");
    }

    /// Golden rendering for `perf diff` on a canned two-record ledger:
    /// a counter drift and a latency regression beyond the noise
    /// budget, regressions sorted first, exact byte-for-byte output.
    #[test]
    fn perf_diff_renders_golden_output() {
        let dir = std::env::temp_dir().join("nadroid_cli_perf_diff");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut base = ledger::Record::new(ledger::Kind::Timing);
        base.ts = 1_754_000_000;
        base.note = "baseline".into();
        base.env = ledger::Env {
            cores: 8,
            threads: 1,
            features: vec!["obs".into()],
            profile: "release".into(),
        };
        base.counters.insert("detector.pairs_examined".into(), 666_419);
        base.times.insert("suite.wall_secs".into(), 0.40);
        base.percentiles.insert("warm.server_p99_us".into(), 1000);
        let mut cur = base.clone();
        cur.kind = ledger::Kind::Ci;
        cur.ts = 1_754_000_100;
        cur.counters.insert("detector.pairs_examined".into(), 666_500);
        cur.percentiles.insert("warm.server_p99_us".into(), 1200);
        ledger::append(&path, &base).unwrap();
        ledger::append(&path, &cur).unwrap();

        let diff_cmd = |base: &str, current: &str| {
            run(&Command::Perf(PerfCommand::Diff {
                base: base.into(),
                current: current.into(),
                min_effect: None,
                ledger: Some(path.to_string_lossy().into_owned()),
            }))
            .unwrap()
        };
        assert_eq!(
            diff_cmd("1", "2"),
            "perf diff: #1 (timing) -> #2 (ci)\n\
             \x20 [regression ] percentiles.warm.server_p99_us: \
             1000us -> 1200us (beyond 6.3% noise + 5.0% min effect)\n\
             \x20 [drift      ] counters.detector.pairs_examined: 666419 -> 666500 (+81)\n"
        );
        // Self-diff is empty, and selector sugar resolves.
        assert_eq!(
            diff_cmd("prev", "prev"),
            "perf diff: #1 (timing) -> #1 (timing)\n  no differences beyond noise\n"
        );
    }

    #[test]
    fn serve_round_trip_through_the_cli_layer() {
        // Drive the server directly (CLI `serve` blocks on stdin-less
        // run_until_shutdown; the smoke gate in ci.sh covers that path)
        // and exercise `request` end to end via `run`.
        let server = nadroid_serve::Server::start(nadroid_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..nadroid_serve::ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();

        let dir = std::env::temp_dir().join("nadroid_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app Req
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let request = |extra: &[&str]| {
            let mut argv = vec!["request", app.to_str().unwrap(), "--addr", &addr];
            argv.extend_from_slice(extra);
            run(&parse_args(args(&argv)).unwrap()).unwrap()
        };

        let cold = request(&[]);
        assert!(cold.contains("app: Req"), "{cold}");
        assert!(cold.contains("cached: false"), "{cold}");
        assert!(cold.contains("request id: r"), "id echoed:\n{cold}");
        let warm = request(&[]);
        assert!(warm.contains("cached: true"), "{warm}");

        let timed_out = request(&["--k", "3", "--deadline-ms", "0"]);
        assert!(timed_out.contains("deadline exceeded"), "{timed_out}");

        let explain = request(&["--explain"]);
        assert!(explain.contains("filter audit:"), "{explain}");

        let stats = run(&parse_args(args(&["request", "--stats", "--addr", &addr])).unwrap())
            .unwrap();
        // cold = miss, warm = hit, deadline (k=3) = miss, explain = hit
        assert!(stats.contains("\"cache_hits\": 2"), "{stats}");
        assert!(stats.contains("\"cache_misses\": 2"), "{stats}");
        assert!(stats.contains("\"deadline_exceeded\": 1"), "{stats}");

        let metrics =
            run(&parse_args(args(&["request", "--metrics", "--addr", &addr])).unwrap()).unwrap();
        assert!(
            metrics.contains("\"schema\":\"nadroid-serve-metrics/1\""),
            "{metrics}"
        );
        let raw = metrics
            .lines()
            .next()
            .expect("metrics document on the first line");
        assert!(nadroid_core::parse_json(raw).is_ok(), "{raw}");

        let text = run(
            &parse_args(args(&["request", "--metrics-text", "--addr", &addr])).unwrap(),
        )
        .unwrap();
        assert!(text.contains("nadroid_serve_requests_total"), "{text}");
        assert!(
            text.contains("nadroid_serve_window{name=\"rps_1s\"}"),
            "{text}"
        );
        assert!(
            text.contains(
                "nadroid_serve_latency_us{series=\"serve.latency.analyze.miss\",quantile=\"0.99\"}"
            ),
            "{text}"
        );

        let bye = run(&parse_args(args(&["request", "--shutdown", "--addr", &addr])).unwrap())
            .unwrap();
        assert!(bye.contains("shutdown acknowledged"), "{bye}");
    }

    #[test]
    fn explain_prefers_a_fresh_provenance_sibling() {
        let dir = std::env::temp_dir().join("nadroid_cli_prov_sibling");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app Sib
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let prov = dir.join("app.provenance.json");
        let _ = std::fs::remove_file(&prov);
        let path = app.to_string_lossy().into_owned();
        let explain_cmd = Command::Explain {
            path: path.clone(),
            warning_id: None,
        };

        // No sibling: live solve.
        let live = run(&explain_cmd).unwrap();
        assert!(!live.contains("from cached provenance"), "{live}");

        // Export provenance, then explain again: served from the file,
        // with identical content after the provenance note.
        run(&Command::Analyze {
            path: path.clone(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: Some(prov.to_string_lossy().into_owned()),
            stats: false,
            mhp_preprune: false,
            threads: None,
        })
        .unwrap();
        let cached = run(&explain_cmd).unwrap();
        assert!(cached.contains("from cached provenance"), "{cached}");
        let (_, body) = cached.split_once('\n').unwrap();
        assert_eq!(body, live, "cached rendering must match the live one");

        // A document whose recorded program hash no longer matches the
        // DSL content is ignored, even though its mtime is *newer* than
        // the source — the freshness check is content, not timestamps.
        let stale = std::fs::read_to_string(&prov)
            .unwrap()
            .replace("\"program_hash\": \"p:", "\"program_hash\": \"p:dead");
        std::fs::write(&prov, stale).unwrap();
        let refreshed = run(&explain_cmd).unwrap();
        assert!(!refreshed.contains("from cached provenance"), "{refreshed}");
        assert_eq!(refreshed, live);

        // A corrupt document falls back to the live solve.
        std::fs::write(&prov, "not json").unwrap();
        let fallback = run(&explain_cmd).unwrap();
        assert!(!fallback.contains("from cached provenance"), "{fallback}");
        assert_eq!(fallback, live);
    }

    #[test]
    fn explain_notes_a_stale_provenance_schema() {
        let dir = std::env::temp_dir().join("nadroid_cli_prov_stale_schema");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app Stale
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let prov = dir.join("app.provenance.json");
        let path = app.to_string_lossy().into_owned();
        run(&Command::Analyze {
            path: path.clone(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: Some(prov.to_string_lossy().into_owned()),
            stats: false,
            mhp_preprune: false,
            threads: None,
        })
        .unwrap();
        let explain_cmd = Command::Explain {
            path,
            warning_id: None,
        };

        // Current schema: cached path, no staleness notice.
        let fresh = run(&explain_cmd).unwrap();
        assert!(fresh.contains("from cached provenance"), "{fresh}");
        assert!(!fresh.contains("note: "), "{fresh}");

        // Rewrite the sibling as the previous (still readable) schema:
        // the same rendering, prefixed by exactly one staleness line.
        let doc = std::fs::read_to_string(&prov)
            .unwrap()
            .replace("nadroid-provenance/4", "nadroid-provenance/3");
        std::fs::write(&prov, doc).unwrap();
        let stale = run(&explain_cmd).unwrap();
        assert!(stale.contains("from cached provenance"), "{stale}");
        assert!(
            stale.contains("uses schema nadroid-provenance/3; current is nadroid-provenance/4"),
            "{stale}"
        );
        assert!(
            stale.contains("Re-run `nadroid analyze --provenance`"),
            "{stale}"
        );
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let e = run(&Command::Dot {
            path: "/nonexistent/x.dsl".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
