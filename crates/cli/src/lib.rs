//! Command implementations behind the `nadroid` binary.
//!
//! The CLI takes an application model in the textual DSL (the
//! reproduction's stand-in for an APK) and runs the pipeline:
//!
//! ```console
//! $ nadroid analyze app.dsl              # full report
//! $ nadroid analyze app.dsl --validate   # + NPE witness search
//! $ nadroid analyze app.dsl --sound-only # skip the unsound ranking tier
//! $ nadroid nosleep app.dsl              # the §9 energy-bug client
//! $ nadroid deva app.dsl                 # the DEvA baseline, for contrast
//! $ nadroid dot app.dsl                  # threadification forest as DOT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nadroid_core::{analyze, render_report, AnalysisConfig};
use nadroid_dynamic::ExploreConfig;
use nadroid_filters::FilterKind;
use nadroid_ir::{parse_program, Program};
use nadroid_threadify::ThreadModel;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run the full pipeline and print the report.
    Analyze {
        /// Path to the DSL file.
        path: String,
        /// Also run the schedule explorer on survivors.
        validate: bool,
        /// Skip the unsound filter tier.
        sound_only: bool,
        /// Points-to sensitivity.
        k: u32,
        /// Emit JSON instead of the text report.
        json: bool,
        /// Baseline file: suppress fingerprints listed there; created or
        /// refreshed when `update_baseline` is set.
        baseline: Option<String>,
        /// Write the current warning fingerprints to the baseline file.
        update_baseline: bool,
        /// Write a Chrome `trace_event` JSON file of the run (load it in
        /// chrome://tracing or Perfetto).
        trace: Option<String>,
        /// Write a flat JSON run-report (timings, counters, span
        /// aggregates) to this file.
        report: Option<String>,
        /// Write the `nadroid-provenance/1` JSON document (stable warning
        /// ids, derivation trees, filter audit) to this file.
        provenance: Option<String>,
        /// Append the human-readable span/metric tree to the output.
        stats: bool,
    },
    /// Explain warnings: derivation tree, filter audit, lineages.
    Explain {
        /// Path to the DSL file.
        path: String,
        /// Stable warning id (`w:` + 16 hex digits); `None` explains all.
        warning_id: Option<String>,
    },
    /// Run the no-sleep energy-bug client.
    NoSleep {
        /// Path to the DSL file.
        path: String,
    },
    /// Run the DEvA baseline.
    Deva {
        /// Path to the DSL file.
        path: String,
    },
    /// Print the threadification forest as Graphviz DOT.
    Dot {
        /// Path to the DSL file.
        path: String,
    },
    /// Print usage.
    Help,
}

/// A CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

/// Usage text.
pub const USAGE: &str = "\
nadroid — static UAF ordering-violation detector for Android app models

USAGE:
    nadroid analyze <app.dsl> [--validate] [--sound-only] [--k <N>] [--json]
                              [--baseline <file>] [--update-baseline]
                              [--trace <file>] [--report <file>]
                              [--provenance <file>] [--stats]
    nadroid explain <app.dsl> [<warning-id>]
    nadroid nosleep <app.dsl>
    nadroid deva    <app.dsl>
    nadroid dot     <app.dsl>

`analyze` may be omitted when the first argument is a flag or a .dsl
file: `nadroid --trace out.json app.dsl`.

OBSERVABILITY (see docs/observability.md):
    --trace <file>    Chrome trace_event JSON — open in chrome://tracing
                      or https://ui.perfetto.dev
    --report <file>   flat JSON run-report: phase timings, counters
                      (incl. per-filter examined/killed), span aggregates
    --provenance <f>  nadroid-provenance/1 JSON: stable warning ids,
                      Datalog derivation trees, per-filter audit trail
    --stats           append the span/metric tree to the text report

`explain` prints each warning's racy-pair derivation tree, the verdict
and evidence of every filter that examined it, and the use/free thread
lineages. With no <warning-id> it explains every warning (pruned ones
included); ids are stable across reruns and printed by the drivers.
";

/// Parse command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the malformed argument.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter();
    let Some(cmd) = args.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "analyze" => parse_analyze(args),
        // Implicit analyze: a leading flag or .dsl path means the
        // subcommand was omitted (`nadroid --trace out.json app.dsl`).
        // Anything else is still an unknown-command error.
        first if first.starts_with("--") || first.ends_with(".dsl") => {
            parse_analyze(std::iter::once(first.to_owned()).chain(args))
        }
        "explain" => {
            let path = args
                .next()
                .ok_or_else(|| CliError("explain needs a file".into()))?;
            let warning_id = args.next();
            if let Some(extra) = args.next() {
                return Err(CliError(format!("unexpected argument `{extra}`")));
            }
            Ok(Command::Explain { path, warning_id })
        }
        "nosleep" | "deva" | "dot" => {
            let path = args
                .next()
                .ok_or_else(|| CliError(format!("{cmd} needs a file")))?;
            if let Some(extra) = args.next() {
                return Err(CliError(format!("unexpected argument `{extra}`")));
            }
            Ok(match cmd.as_str() {
                "nosleep" => Command::NoSleep { path },
                "deva" => Command::Deva { path },
                _ => Command::Dot { path },
            })
        }
        other => Err(CliError(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn parse_analyze(args: impl Iterator<Item = String>) -> Result<Command, CliError> {
    let mut args = args;
    let mut path = None;
    let mut validate = false;
    let mut sound_only = false;
    let mut k = 2u32;
    let mut json = false;
    let mut baseline = None;
    let mut update_baseline = false;
    let mut trace = None;
    let mut report = None;
    let mut provenance = None;
    let mut stats = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--validate" => validate = true,
            "--sound-only" => sound_only = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--stats" => stats = true,
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .ok_or_else(|| CliError("--baseline needs a file".into()))?,
                );
            }
            "--trace" => {
                trace = Some(
                    args.next()
                        .ok_or_else(|| CliError("--trace needs a file".into()))?,
                );
            }
            "--report" => {
                report = Some(
                    args.next()
                        .ok_or_else(|| CliError("--report needs a file".into()))?,
                );
            }
            "--provenance" => {
                provenance = Some(
                    args.next()
                        .ok_or_else(|| CliError("--provenance needs a file".into()))?,
                );
            }
            "--k" => {
                let v = args
                    .next()
                    .ok_or_else(|| CliError("--k needs a value".into()))?;
                k = v
                    .parse()
                    .map_err(|_| CliError(format!("bad k value `{v}`")))?;
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_owned());
            }
            other => return Err(CliError(format!("unexpected argument `{other}`"))),
        }
    }
    if update_baseline && baseline.is_none() {
        return Err(CliError("--update-baseline needs --baseline <file>".into()));
    }
    let path = path.ok_or_else(|| CliError("analyze needs a file".into()))?;
    Ok(Command::Analyze {
        path,
        validate,
        sound_only,
        k,
        json,
        baseline,
        update_baseline,
        trace,
        report,
        provenance,
        stats,
    })
}

fn load(path: &str) -> Result<Program, CliError> {
    let src =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    parse_program(&src).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Execute a command, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable or unparsable inputs.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::Analyze {
            path,
            validate,
            sound_only,
            k,
            json,
            baseline,
            update_baseline,
            trace,
            report,
            provenance,
            stats,
        } => {
            let program = load(path)?;
            // Any observability output wants a recorder installed for the
            // duration of the analysis; the Datalog crosscheck rides along
            // so rule-level engine spans appear in the capture.
            let observing = trace.is_some() || report.is_some() || *stats;
            let config = AnalysisConfig {
                k: *k,
                unsound_filters: if *sound_only {
                    Vec::new()
                } else {
                    FilterKind::unsound().to_vec()
                },
                datalog_crosscheck: observing,
                ..AnalysisConfig::default()
            };
            let recorder = nadroid_obs::Recorder::new();
            let analysis = {
                let _guard = observing.then(|| recorder.install());
                analyze(&program, &config)
            };
            if let Some(trace_path) = trace {
                std::fs::write(trace_path, recorder.chrome_trace())
                    .map_err(|e| CliError(format!("cannot write {trace_path}: {e}")))?;
            }
            if let Some(report_path) = report {
                std::fs::write(report_path, nadroid_core::render_run_report(&analysis, &recorder))
                    .map_err(|e| CliError(format!("cannot write {report_path}: {e}")))?;
            }
            if let Some(prov_path) = provenance {
                std::fs::write(prov_path, nadroid_core::render_provenance_json(&analysis))
                    .map_err(|e| CliError(format!("cannot write {prov_path}: {e}")))?;
            }

            // Baseline workflow: suppress already-acknowledged warnings.
            let mut suppressed = 0usize;
            let mut fresh = Vec::new();
            let rendered = analysis.rendered_survivors();
            if let Some(bl_path) = baseline {
                let known: std::collections::BTreeSet<String> =
                    match std::fs::read_to_string(bl_path) {
                        Ok(s) => s.lines().map(str::to_owned).collect(),
                        Err(_) => std::collections::BTreeSet::new(),
                    };
                for w in &rendered {
                    if known.contains(&nadroid_core::fingerprint(w)) {
                        suppressed += 1;
                    } else {
                        fresh.push(w.clone());
                    }
                }
                if *update_baseline {
                    let all: Vec<String> = rendered.iter().map(nadroid_core::fingerprint).collect();
                    std::fs::write(
                        bl_path,
                        all.join(
                            "
",
                        ) + "
",
                    )
                    .map_err(|e| CliError(format!("cannot write {bl_path}: {e}")))?;
                }
            }

            if *json {
                return Ok(nadroid_core::render_json(&analysis));
            }
            let validation =
                validate.then(|| analysis.validate_survivors(ExploreConfig::default()));
            let mut out = render_report(&analysis, validation.as_ref());
            if *stats {
                out.push('\n');
                out.push_str(&recorder.stats_tree());
            }
            if baseline.is_some() {
                out.push_str(&format!(
                    "
baseline: {suppressed} suppressed, {} new
",
                    fresh.len()
                ));
                for w in &fresh {
                    out.push_str(&format!(
                        "  NEW [{}] {}
",
                        w.pair_type, w.field
                    ));
                }
            }
            Ok(out)
        }
        Command::Explain { path, warning_id } => {
            let program = load(path)?;
            let analysis = analyze(&program, &AnalysisConfig::default());
            Ok(nadroid_core::render_explain(
                &analysis,
                warning_id.as_deref(),
            ))
        }
        Command::NoSleep { path } => {
            let program = load(path)?;
            let analysis = analyze(&program, &AnalysisConfig::default());
            let warnings = analysis.no_sleep_warnings();
            let mut out = format!("{} no-sleep warning(s)\n", warnings.len());
            for w in &warnings {
                out.push_str(&format!(
                    "  acquire at {}",
                    program.describe_instr(w.acquire.instr)
                ));
                if w.unordered_releases.is_empty() {
                    out.push_str(" — never released\n");
                } else {
                    out.push_str(&format!(
                        " — only racy releases at {}\n",
                        w.unordered_releases
                            .iter()
                            .map(|r| program.describe_instr(r.instr))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            Ok(out)
        }
        Command::Deva { path } => {
            let program = load(path)?;
            let warnings = nadroid_deva::run_deva(&program);
            let mut out = format!("DEvA: {} event anomaly warning(s)\n", warnings.len());
            for w in &warnings {
                out.push_str(&format!(
                    "  {} — use in {}, free in {}\n",
                    program.field(w.field).name(),
                    program.method(w.use_handler).name(),
                    program.method(w.free_handler).name()
                ));
            }
            Ok(out)
        }
        Command::Dot { path } => {
            let program = load(path)?;
            let threads = ThreadModel::build(&program);
            Ok(threads.to_dot(&program))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_analyze_flags() {
        let cmd = parse_args(args(&[
            "analyze",
            "app.dsl",
            "--validate",
            "--k",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                path: "app.dsl".into(),
                validate: true,
                sound_only: false,
                k: 3,
                json: true,
                baseline: None,
                update_baseline: false,
                trace: None,
                report: None,
                provenance: None,
                stats: false,
            }
        );
        assert!(parse_args(args(&["analyze", "a.dsl", "--update-baseline"])).is_err());
    }

    #[test]
    fn parses_explain_and_provenance() {
        assert_eq!(
            parse_args(args(&["explain", "app.dsl"])).unwrap(),
            Command::Explain {
                path: "app.dsl".into(),
                warning_id: None,
            }
        );
        assert_eq!(
            parse_args(args(&["explain", "app.dsl", "w:0011223344556677"])).unwrap(),
            Command::Explain {
                path: "app.dsl".into(),
                warning_id: Some("w:0011223344556677".into()),
            }
        );
        assert!(parse_args(args(&["explain"])).is_err());
        assert!(parse_args(args(&["explain", "a.dsl", "w:1", "extra"])).is_err());

        match parse_args(args(&["analyze", "app.dsl", "--provenance", "p.json"])).unwrap() {
            Command::Analyze { provenance, .. } => {
                assert_eq!(provenance.as_deref(), Some("p.json"));
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        assert!(parse_args(args(&["analyze", "a.dsl", "--provenance"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_args(args(&["analyze", "app.dsl", "--wat"])).is_err());
        assert!(parse_args(args(&["frobnicate"])).is_err());
        assert!(parse_args(args(&["analyze"])).is_err());
        assert!(parse_args(args(&["dot"])).is_err());
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(Vec::new()).unwrap(), Command::Help);
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn end_to_end_on_a_temp_file() {
        let dir = std::env::temp_dir().join("nadroid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.dsl");
        std::fs::write(
            &path,
            r#"
            app Cli
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let p = path.to_string_lossy().to_string();

        let report = run(&Command::Analyze {
            path: p.clone(),
            validate: true,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
        })
        .unwrap();
        assert!(report.contains("nAdroid report for `Cli`"), "{report}");
        assert!(report.contains("CONFIRMED"), "{report}");

        let dot = run(&Command::Dot { path: p.clone() }).unwrap();
        assert!(dot.starts_with("digraph threadification"), "{dot}");
        assert!(dot.contains("M.onClick"), "{dot}");

        let deva = run(&Command::Deva { path: p.clone() }).unwrap();
        assert!(deva.contains("1 event anomaly"), "{deva}");

        let ns = run(&Command::NoSleep { path: p }).unwrap();
        assert!(ns.contains("0 no-sleep"), "{ns}");
    }

    #[test]
    fn baseline_suppresses_known_warnings() {
        let dir = std::env::temp_dir().join("nadroid_cli_baseline");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app B
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let bl = dir.join("baseline.txt");
        let _ = std::fs::remove_file(&bl);
        let analyze_cmd = |update| Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: Some(bl.to_string_lossy().into_owned()),
            update_baseline: update,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
        };
        // First run: everything is new; write the baseline.
        let out = run(&analyze_cmd(true)).unwrap();
        assert!(out.contains("baseline: 0 suppressed, 1 new"), "{out}");
        // Second run: the known warning is suppressed.
        let out = run(&analyze_cmd(false)).unwrap();
        assert!(out.contains("baseline: 1 suppressed, 0 new"), "{out}");
    }

    #[test]
    fn json_output_mode() {
        let dir = std::env::temp_dir().join("nadroid_cli_json");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            "app J
activity M { cb onClick { } }",
        )
        .unwrap();
        let out = run(&Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: true,
            baseline: None,
            update_baseline: false,
            trace: None,
            report: None,
            provenance: None,
            stats: false,
        })
        .unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"app\": \"J\""), "{out}");
    }

    #[test]
    fn implicit_analyze_accepts_flags_and_dsl_paths() {
        let cmd = parse_args(args(&["--trace", "out.json", "app.dsl"])).unwrap();
        match cmd {
            Command::Analyze { path, trace, .. } => {
                assert_eq!(path, "app.dsl");
                assert_eq!(trace.as_deref(), Some("out.json"));
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        let cmd = parse_args(args(&["app.dsl", "--stats"])).unwrap();
        match cmd {
            Command::Analyze { path, stats, .. } => {
                assert_eq!(path, "app.dsl");
                assert!(stats);
            }
            other => panic!("expected Analyze, got {other:?}"),
        }
        // Bare unknown words are still unknown commands.
        assert!(parse_args(args(&["frobnicate"])).is_err());
        assert!(parse_args(args(&["--trace"])).is_err(), "--trace needs a file");
    }

    #[test]
    fn trace_report_and_stats_outputs() {
        let dir = std::env::temp_dir().join("nadroid_cli_obs");
        std::fs::create_dir_all(&dir).unwrap();
        let app = dir.join("app.dsl");
        std::fs::write(
            &app,
            r#"
            app Obs
            activity M {
                field f: M
                cb onCreate { f = new M }
                cb onClick { use f }
                cb onPause { f = null }
            }
            "#,
        )
        .unwrap();
        let trace_path = dir.join("trace.json");
        let report_path = dir.join("report.json");
        let out = run(&Command::Analyze {
            path: app.to_string_lossy().into_owned(),
            validate: false,
            sound_only: false,
            k: 2,
            json: false,
            baseline: None,
            update_baseline: false,
            trace: Some(trace_path.to_string_lossy().into_owned()),
            report: Some(report_path.to_string_lossy().into_owned()),
            provenance: None,
            stats: true,
        })
        .unwrap();
        assert!(out.contains("run stats:"), "--stats appends the tree:\n{out}");
        assert!(out.contains("analyze"), "{out}");
        // The crosscheck solve feeds the engine gauges: throughput plus
        // the provenance-arena footprint (zero when recording is off).
        assert!(out.contains("datalog.tuples_per_sec"), "{out}");
        assert!(out.contains("datalog.prov_arena_bytes"), "{out}");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        // The four pipeline phases plus detection sub-phases and the
        // engine crosscheck all appear as spans.
        for name in ["analyze", "modeling", "detection", "pointsto", "escape", "detect", "filtering"] {
            assert!(trace.contains(&format!("\"name\": \"{name}\"")), "missing {name}:\n{trace}");
        }
        assert!(trace.contains("datalog.rule:vP"), "rule-level spans:\n{trace}");

        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"app\": \"Obs\""), "{report}");
        assert!(report.contains("\"filter.MHB.killed\""), "{report}");
        assert!(report.contains("\"pointsto.queue_pops\""), "{report}");
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let e = run(&Command::Dot {
            path: "/nonexistent/x.dsl".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
