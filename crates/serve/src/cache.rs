//! The content-addressed result cache.
//!
//! Analyses are deterministic (the determinism regression suite pins
//! this), so a result is fully identified by *what* was analyzed and
//! *how*: the key is `(fnv64(program source), fnv64(config))`. Values
//! carry everything a response needs — the summary counts, the stable
//! warning ids, and the rendered `nadroid-provenance/3` document — so a
//! warm request (including `explain` queries) is a lookup plus a string
//! copy, never a re-solve.
//!
//! Eviction is LRU under a byte budget. Entry count stays small (one
//! per distinct app × config), so the evictor finds the
//! least-recently-used slot with a linear scan rather than carrying an
//! intrusive list.

use nadroid_core::{AnalysisConfig, Summary};
use std::collections::HashMap;

/// 64-bit FNV-1a — the same construction the detector's warning ids
/// use; dependency-free and stable across platforms and reruns.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A content-derived cache key: program bytes × analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `fnv64` of the DSL source text.
    pub program_hash: u64,
    /// `fnv64` of the full `AnalysisConfig` (k, detector options, both
    /// filter pipelines), via its canonical `Debug` rendering.
    pub config_hash: u64,
}

impl CacheKey {
    /// The key for analyzing `source` under `config`.
    ///
    /// The thread count is canonicalized to 1 before hashing: analyses
    /// are byte-identical at every thread count (the determinism suite
    /// sweeps 1/2/4/8), so a result computed at one `--threads` setting
    /// must hit for requests served at another.
    #[must_use]
    pub fn of(source: &str, config: &AnalysisConfig) -> CacheKey {
        let canonical = AnalysisConfig {
            threads: 1,
            ..config.clone()
        };
        CacheKey {
            program_hash: fnv64(source.as_bytes()),
            config_hash: fnv64(format!("{canonical:?}").as_bytes()),
        }
    }
}

/// One cached analysis outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// App name from the program header.
    pub app: String,
    /// The Table 1 row counts.
    pub summary: Summary,
    /// Stable ids (`w:` + 16 hex) of the warnings surviving all filters.
    pub warning_ids: Vec<String>,
    /// The full `nadroid-provenance/3` document — `explain` queries are
    /// answered from this without re-solving.
    pub provenance_json: String,
    /// The `nadroid-confirm/1` document, filled in (and the provenance
    /// above upgraded with verdicts) the first time a `confirm` request
    /// lands for this entry. `None` until then: confirmation is far
    /// more expensive than analysis, so `analyze` never pays for it.
    pub confirm_json: Option<String>,
    /// Wall micros the cold computation took.
    pub compute_micros: u64,
}

impl CachedResult {
    /// Approximate heap footprint, the unit of the cache's byte budget.
    #[must_use]
    pub fn cost_bytes(&self) -> usize {
        let ids: usize = self.warning_ids.iter().map(|s| s.len() + 24).sum();
        let confirm = self.confirm_json.as_ref().map_or(0, String::len);
        self.app.len() + self.provenance_json.len() + confirm + ids + 128
    }
}

/// Hit/miss/eviction accounting, mirrored into `serve.cache.*` obs
/// counters by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Successful inserts.
    pub inserts: u64,
}

#[derive(Debug)]
struct Slot {
    result: CachedResult,
    cost: usize,
    last_used: u64,
}

/// An LRU map from [`CacheKey`] to [`CachedResult`] bounded by a byte
/// budget rather than an entry count (provenance documents dominate and
/// vary wildly in size across apps).
#[derive(Debug)]
pub struct ResultCache {
    budget: usize,
    bytes: usize,
    seq: u64,
    map: HashMap<CacheKey, Slot>,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache holding at most `budget_bytes` of results.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget: budget_bytes,
            bytes: 0,
            seq: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        self.seq += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.seq;
                self.stats.hits += 1;
                Some(slot.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting least-recently-used entries until the
    /// budget holds. A result larger than the whole budget is not
    /// retained (it would only evict everything else and then itself).
    pub fn insert(&mut self, key: CacheKey, result: CachedResult) {
        let cost = result.cost_bytes();
        if cost > self.budget {
            return;
        }
        self.seq += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cost;
        }
        while self.bytes + cost > self.budget {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies a slot to evict");
            let evicted = self.map.remove(&lru).expect("lru key present");
            self.bytes -= evicted.cost;
            self.stats.evictions += 1;
        }
        self.bytes += cost;
        self.stats.inserts += 1;
        self.map.insert(
            key,
            Slot {
                result,
                cost,
                last_used: self.seq,
            },
        );
    }

    /// Current resident bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Live entry count.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// The accounting so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(app: &str, pad: usize) -> CachedResult {
        CachedResult {
            app: app.to_owned(),
            summary: Summary {
                loc: 1,
                ec: 1,
                pc: 0,
                threads: 1,
                potential: 1,
                after_sound: 1,
                after_unsound: 1,
                refuted: 0,
                after_refutation: 1,
            },
            warning_ids: vec!["w:0011223344556677".into()],
            provenance_json: "x".repeat(pad),
            confirm_json: None,
            compute_micros: 7,
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            program_hash: n,
            config_hash: 0,
        }
    }

    #[test]
    fn keys_are_content_addressed() {
        let cfg = AnalysisConfig::default();
        assert_eq!(CacheKey::of("app A", &cfg), CacheKey::of("app A", &cfg));
        assert_ne!(
            CacheKey::of("app A", &cfg).program_hash,
            CacheKey::of("app B", &cfg).program_hash
        );
        let k3 = AnalysisConfig {
            k: 3,
            ..AnalysisConfig::default()
        };
        assert_ne!(
            CacheKey::of("app A", &cfg).config_hash,
            CacheKey::of("app A", &k3).config_hash
        );
    }

    #[test]
    fn lru_eviction_respects_a_tight_byte_budget() {
        let unit = result("a", 100).cost_bytes();
        let mut cache = ResultCache::new(unit * 2 + unit / 2); // fits two
        cache.insert(key(1), result("a", 100));
        cache.insert(key(2), result("b", 100));
        assert_eq!(cache.entries(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), result("c", 100));
        assert_eq!(cache.entries(), 2);
        assert!(cache.get(&key(1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2)).is_none(), "LRU slot evicted");
        assert!(cache.get(&key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.inserts, 3);
        assert!(cache.bytes() <= unit * 2 + unit / 2);
    }

    #[test]
    fn oversized_results_are_not_retained() {
        let mut cache = ResultCache::new(64);
        cache.insert(key(1), result("big", 10_000));
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(key(1), result("a", 100));
        let b1 = cache.bytes();
        cache.insert(key(1), result("a", 100));
        assert_eq!(cache.bytes(), b1, "same entry, same footprint");
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), result("a", 10));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }
}
