//! The analysis server: a TCP accept loop in front of a [`Pool`] of
//! analysis workers and a shared [`ResultCache`].
//!
//! Request lifecycle:
//!
//! 1. A connection thread decodes one `nadroid-serve/1` line.
//! 2. `stats`/`shutdown` are answered inline (they never touch the
//!    solver). `analyze`/`explain` are wrapped into a job and offered
//!    to the pool; a full queue is answered `rejected` immediately —
//!    admission control, not buffering.
//! 3. On a worker, the job first consults the content-addressed cache
//!    (warm path: a lookup and a clone). On a miss it installs the
//!    request's [`CancelToken`] and runs the full pipeline; a deadline
//!    firing unwinds at the next solver checkpoint, is caught at the
//!    job boundary, and becomes a structured `deadline_exceeded`
//!    response — the worker thread survives.
//!
//! Every stage reports through [`nadroid_obs`]: per-request spans,
//! `serve.*` counters, and queue-depth/inflight/cache-bytes gauges.

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::pool::{Pool, Submit};
use crate::protocol::{AnalyzeOpts, Request, Response};
use crate::telemetry::{RequestEvent, Telemetry, TelemetryConfig};
use nadroid_core::{
    analyze, render_explain_from_json, render_provenance_json_with, AnalysisConfig,
};
use nadroid_detector::warning_id;
use nadroid_ir::parse_program;
use nadroid_obs::{self as obs, cancel::CancelToken, Recorder};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Analysis worker threads.
    pub workers: usize,
    /// Requested inner analysis threads per worker (the `--threads`
    /// flag). The effective value is clamped so that
    /// `workers x threads` never exceeds the machine's cores — see
    /// [`ServeConfig::effective_threads`]. Results are byte-identical
    /// at every value, so the clamp never changes a response.
    pub threads: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Submission-queue bound; past it requests are rejected.
    pub queue_cap: usize,
    /// Deadline applied when a request carries none (`None` = no limit).
    pub default_deadline_ms: Option<u64>,
    /// Backoff suggested to rejected clients.
    pub retry_after_ms: u64,
    /// Access log / slow capture / sampling knobs.
    pub telemetry: TelemetryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7911".to_owned(),
            workers: 4,
            threads: 1,
            cache_bytes: 64 << 20,
            queue_cap: 16,
            default_deadline_ms: None,
            retry_after_ms: 50,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The inner thread count each worker actually runs with: the
    /// requested `threads`, clamped so the pool's total concurrency
    /// (`workers x threads`) stays within the machine's core budget.
    /// Admission control already bounds the number of jobs in flight;
    /// this keeps inner parallelism from oversubscribing beneath it.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let per_worker = cores / self.workers.max(1);
        self.threads.max(1).min(per_worker.max(1))
    }
}

struct Shared {
    cfg: ServeConfig,
    cache: Mutex<ResultCache>,
    recorder: Recorder,
    pool: Pool,
    telemetry: Telemetry,
    stopping: Arc<AtomicBool>,
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// Per-request context minted on the connection thread and carried into
/// the worker: the request id and (once a worker picks the job up) the
/// time the job spent queued.
struct ReqCtx {
    id: String,
    queue_us: u64,
}

/// A running analysis service. Dropping it shuts the service down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn config_for(opts: &AnalyzeOpts, threads: usize) -> AnalysisConfig {
    let mut cfg = AnalysisConfig {
        k: opts.k,
        threads,
        ..AnalysisConfig::default()
    };
    if opts.sound_only {
        cfg.unsound_filters.clear();
    }
    cfg
}

/// Record per-phase latency histograms from one analysis's phase
/// timings (`serve.phase.*`, microseconds), into whatever recorder the
/// calling thread has installed.
fn record_phase_hists(timings: &nadroid_core::PhaseTimings) {
    #[cfg(feature = "telemetry")]
    {
        let us = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        obs::hist("serve.phase.hb", us(timings.hb));
        obs::hist("serve.phase.pointsto", us(timings.pointsto));
        obs::hist("serve.phase.escape", us(timings.escape));
        obs::hist("serve.phase.detect", us(timings.detect));
        obs::hist("serve.phase.filter", us(timings.filtering));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = timings;
}

/// The telemetry outcome label for a response.
fn outcome_of(resp: &Response) -> &'static str {
    match resp {
        Response::Analyze { cached, .. }
        | Response::Explain { cached, .. }
        | Response::Confirm { cached, .. } => {
            if *cached {
                "hit"
            } else {
                "miss"
            }
        }
        Response::Stats { .. } | Response::Metrics { .. } | Response::Shutdown => "ok",
        Response::Rejected { .. } => "rejected",
        Response::DeadlineExceeded { .. } => "deadline",
        Response::Error { .. } => "error",
    }
}

// The `Err` of these fetch-or-compute helpers *is* the ready-to-send
// failure `Response`; it only exists on the cold path, where one enum's
// worth of stack is immaterial next to a pipeline run.
#[allow(clippy::result_large_err)]
impl Shared {
    /// Fetch-or-compute the cached result for `(source, opts)` under a
    /// precomputed `(config, key)` pair. `Ok` carries
    /// `(result, came_from_cache)`; `Err` is a ready-to-send failure
    /// response.
    fn cached_result(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
        config: &AnalysisConfig,
        key: CacheKey,
        rid: &str,
    ) -> Result<(CachedResult, bool), Response> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            obs::counter("serve.cache.hits", 1);
            return Ok((hit, true));
        }
        obs::counter("serve.cache.misses", 1);
        let result = self.compute(source, opts, config, rid)?;
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let before = cache.stats().evictions;
            cache.insert(key, result.clone());
            let evicted = cache.stats().evictions - before;
            if evicted > 0 {
                obs::counter("serve.cache.evictions", evicted);
            }
            obs::gauge("serve.cache.bytes", cache.bytes() as u64);
        }
        Ok((result, false))
    }

    /// The cold path: parse, run the pipeline under the request's
    /// cancel token, and package everything a response (or a later
    /// `explain`) needs.
    fn compute(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
        config: &AnalysisConfig,
        rid: &str,
    ) -> Result<CachedResult, Response> {
        let deadline_ms = opts.deadline_ms.or(self.cfg.default_deadline_ms);
        // The request id rides the token: a cancellation observed deep
        // in a solver loop stays attributable to this request.
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline_tagged(Duration::from_millis(ms), rid),
            None => CancelToken::tagged(rid),
        };
        let program = parse_program(source)
            .map_err(|e| Response::Error {
                message: format!("parse error: {e}"),
            })?;
        // A zero (or already-elapsed) deadline must not reach the
        // solver at all.
        if token.is_cancelled() {
            return Err(Response::DeadlineExceeded {
                deadline_ms: deadline_ms.unwrap_or(0),
            });
        }
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _scope = token.install();
            let _span = obs::span("serve.analyze");
            let analysis = analyze(&program, config);
            record_phase_hists(analysis.timings());
            let provenances = analysis.warning_provenances();
            let provenance_json = render_provenance_json_with(&analysis, &provenances);
            let warning_ids = analysis
                .survivors()
                .iter()
                .map(|w| warning_id(&program, analysis.threads(), w))
                .collect();
            CachedResult {
                app: program.name().to_owned(),
                summary: analysis.summary(),
                warning_ids,
                provenance_json,
                confirm_json: None,
                compute_micros: 0,
            }
        }));
        match outcome {
            Ok(mut result) => {
                result.compute_micros = micros_since(t);
                Ok(result)
            }
            Err(payload) => {
                if obs::cancel::was_cancelled(&*payload) {
                    Err(Response::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    })
                } else {
                    Err(Response::Error {
                        message: "analysis panicked".to_owned(),
                    })
                }
            }
        }
    }

    fn handle_analyze(&self, source: &str, opts: &AnalyzeOpts, ctx: &ReqCtx) -> Response {
        let t = Instant::now();
        let config = config_for(opts, self.cfg.effective_threads());
        let key = CacheKey::of(source, &config);
        // When slow capture is armed, the whole computation records into
        // a per-request recorder so a slow request's span tree can be
        // serialized on its own; the metrics fold back into the shared
        // recorder afterwards (`merge_from` — spans stay per-request).
        let capture = self.telemetry.capture_enabled().then(Recorder::new);
        let outcome = {
            let _guard = capture.as_ref().map(Recorder::install);
            let _span = obs::span("serve.request");
            self.cached_result(source, opts, &config, key, &ctx.id)
        };
        // One clock read feeds both the response's `micros` and the
        // telemetry `service_us`, so client- and server-side latency
        // distributions are comparable sample for sample.
        let micros = micros_since(t);
        let resp = match outcome {
            Ok((result, cached)) => Response::Analyze {
                app: result.app,
                cached,
                micros,
                summary: result.summary,
                warnings: result.warning_ids,
            },
            Err(resp) => resp,
        };
        self.account(&resp);
        self.observe(ctx, "analyze", &resp, micros, Some(key));
        self.finish_capture(ctx, capture.as_ref(), micros);
        resp
    }

    /// Fetch-or-compute the confirmation document for `(source, opts)`.
    /// The entry shares the analyze/explain cache key: a prior analyze
    /// hit is *upgraded* in place (confirmation filled in, provenance
    /// re-rendered with verdicts), and later explain queries see the
    /// verdict-carrying provenance for free.
    fn cached_confirm(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
        config: &AnalysisConfig,
        key: CacheKey,
        rid: &str,
    ) -> Result<(String, bool), Response> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            if let Some(json) = hit.confirm_json {
                obs::counter("serve.cache.hits", 1);
                return Ok((json, true));
            }
        }
        obs::counter("serve.cache.misses", 1);
        let result = self.compute_confirm(source, opts, config, rid)?;
        let json = result
            .confirm_json
            .clone()
            .expect("compute_confirm fills confirm_json");
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let before = cache.stats().evictions;
            cache.insert(key, result);
            let evicted = cache.stats().evictions - before;
            if evicted > 0 {
                obs::counter("serve.cache.evictions", evicted);
            }
            obs::gauge("serve.cache.bytes", cache.bytes() as u64);
        }
        Ok((json, false))
    }

    /// The cold confirmation path: run the pipeline, then the schedule
    /// synthesis over every survivor, all under the request's cancel
    /// token. A deadline firing mid-search is *not* cached — partial
    /// verdicts ("cancelled before the search ran") must never be
    /// served as the app's confirmation.
    fn compute_confirm(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
        config: &AnalysisConfig,
        rid: &str,
    ) -> Result<CachedResult, Response> {
        let deadline_ms = opts.deadline_ms.or(self.cfg.default_deadline_ms);
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline_tagged(Duration::from_millis(ms), rid),
            None => CancelToken::tagged(rid),
        };
        let program = parse_program(source)
            .map_err(|e| Response::Error {
                message: format!("parse error: {e}"),
            })?;
        if token.is_cancelled() {
            return Err(Response::DeadlineExceeded {
                deadline_ms: deadline_ms.unwrap_or(0),
            });
        }
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _scope = token.install();
            let _span = obs::span("serve.confirm");
            let analysis = analyze(&program, config);
            record_phase_hists(analysis.timings());
            let confirm_outcome =
                nadroid_confirm::confirm_survivors(&analysis, &nadroid_confirm::ConfirmConfig::default());
            let confirm_json = nadroid_confirm::render_confirm_json(&analysis, &confirm_outcome);
            let mut provenances = analysis.warning_provenances();
            nadroid_confirm::attach_confirmations(&mut provenances, &confirm_outcome);
            let provenance_json = render_provenance_json_with(&analysis, &provenances);
            let warning_ids = analysis
                .survivors()
                .iter()
                .map(|w| warning_id(&program, analysis.threads(), w))
                .collect();
            CachedResult {
                app: program.name().to_owned(),
                summary: analysis.summary(),
                warning_ids,
                provenance_json,
                confirm_json: Some(confirm_json),
                compute_micros: 0,
            }
        }));
        match outcome {
            // A should_stop() observed between per-warning searches
            // returns normally with placeholder verdicts; surface the
            // deadline instead of caching them.
            Ok(_) if token.is_cancelled() => Err(Response::DeadlineExceeded {
                deadline_ms: deadline_ms.unwrap_or(0),
            }),
            Ok(mut result) => {
                result.compute_micros = micros_since(t);
                Ok(result)
            }
            Err(payload) => {
                if obs::cancel::was_cancelled(&*payload) {
                    Err(Response::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    })
                } else {
                    Err(Response::Error {
                        message: "confirmation panicked".to_owned(),
                    })
                }
            }
        }
    }

    fn handle_confirm(&self, source: &str, opts: &AnalyzeOpts, ctx: &ReqCtx) -> Response {
        let t = Instant::now();
        let config = config_for(opts, self.cfg.effective_threads());
        let key = CacheKey::of(source, &config);
        let capture = self.telemetry.capture_enabled().then(Recorder::new);
        let outcome = {
            let _guard = capture.as_ref().map(Recorder::install);
            let _span = obs::span("serve.request");
            self.cached_confirm(source, opts, &config, key, &ctx.id)
        };
        let micros = micros_since(t);
        let resp = match outcome {
            Ok((json, cached)) => Response::Confirm {
                cached,
                micros,
                json,
            },
            Err(resp) => resp,
        };
        self.account(&resp);
        self.observe(ctx, "confirm", &resp, micros, Some(key));
        self.finish_capture(ctx, capture.as_ref(), micros);
        resp
    }

    fn handle_explain(
        &self,
        source: &str,
        id: Option<&str>,
        opts: &AnalyzeOpts,
        ctx: &ReqCtx,
    ) -> Response {
        let t = Instant::now();
        let config = config_for(opts, self.cfg.effective_threads());
        let key = CacheKey::of(source, &config);
        let capture = self.telemetry.capture_enabled().then(Recorder::new);
        let outcome = {
            let _guard = capture.as_ref().map(Recorder::install);
            let _span = obs::span("serve.request");
            self.cached_result(source, opts, &config, key, &ctx.id)
        };
        let micros = micros_since(t);
        let resp = match outcome {
            Ok((result, cached)) => {
                match render_explain_from_json(&result.provenance_json, id) {
                    Ok(text) => Response::Explain {
                        cached,
                        micros,
                        text,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            Err(resp) => resp,
        };
        self.account(&resp);
        self.observe(ctx, "explain", &resp, micros, Some(key));
        self.finish_capture(ctx, capture.as_ref(), micros);
        resp
    }

    /// Record one finished request into the telemetry hub.
    fn observe(
        &self,
        ctx: &ReqCtx,
        endpoint: &str,
        resp: &Response,
        service_us: u64,
        cache_key: Option<CacheKey>,
    ) {
        self.telemetry.observe(&RequestEvent {
            id: &ctx.id,
            endpoint,
            outcome: outcome_of(resp),
            queue_us: ctx.queue_us,
            service_us,
            cache_key,
            threads: self.cfg.effective_threads(),
        });
    }

    /// Fold a per-request capture recorder back into the shared one and
    /// serialize its span tree when the request crossed the slow
    /// threshold.
    fn finish_capture(&self, ctx: &ReqCtx, capture: Option<&Recorder>, service_us: u64) {
        if let Some(rec) = capture {
            self.recorder.merge_from(rec);
            if self.telemetry.is_slow(service_us) {
                let _ = self.telemetry.write_slow_trace(&ctx.id, &rec.chrome_trace());
            }
        }
    }

    fn account(&self, resp: &Response) {
        match resp {
            Response::DeadlineExceeded { .. } => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve.deadline_exceeded", 1);
            }
            Response::Error { .. } => {
                obs::counter("serve.errors", 1);
            }
            _ => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve.completed", 1);
            }
        }
    }

    fn stats_fields(&self) -> Vec<(String, u64)> {
        let (cache_stats, cache_bytes, cache_entries) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.stats(), cache.bytes() as u64, cache.entries() as u64)
        };
        let f = |name: &str, value: u64| (name.to_owned(), value);
        vec![
            f("requests", self.requests.load(Ordering::Relaxed)),
            // `requests` and `requests_total` agree today; `requests_total`
            // is pinned monotonic (it is the id mint), so two snapshots
            // stay orderable even if `requests` ever becomes resettable.
            f("requests_total", self.telemetry.requests_total()),
            f("uptime_secs", self.telemetry.uptime_secs()),
            f("completed", self.completed.load(Ordering::Relaxed)),
            f("rejected", self.rejected.load(Ordering::Relaxed)),
            f(
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            f("cache_hits", cache_stats.hits),
            f("cache_misses", cache_stats.misses),
            f("cache_evictions", cache_stats.evictions),
            f("cache_bytes", cache_bytes),
            f("cache_entries", cache_entries),
            f("queue_depth", self.pool.queue_depth()),
            f("inflight", self.pool.inflight()),
            f("workers", self.cfg.workers as u64),
            // Inner analysis parallelism: the clamped value each worker
            // runs with, plus the raw request so operators can see when
            // the core budget reduced it.
            f("threads", self.cfg.effective_threads() as u64),
            f("threads_requested", self.cfg.threads.max(1) as u64),
            // HB-graph aggregates across every analysis the workers ran
            // (worker threads install the shared recorder, so the hb.*
            // counters accumulate here).
            f("hb.edges", self.recorder.counter_value("hb.edges")),
            f(
                "hb.closure_micros",
                self.recorder.counter_value("hb.closure_micros"),
            ),
            f(
                "detector.mhp_prepruned",
                self.recorder.counter_value("detector.mhp_prepruned"),
            ),
            // Confirmation verdict counters, accumulated across every
            // confirm request the workers ran (shared recorder again).
            f(
                "confirm.confirmed",
                self.recorder.counter_value("confirm.confirmed"),
            ),
            f(
                "confirm.unconfirmed",
                self.recorder.counter_value("confirm.unconfirmed"),
            ),
            f(
                "confirm.infeasible",
                self.recorder.counter_value("confirm.infeasible"),
            ),
            f(
                "confirm.states",
                self.recorder.counter_value("confirm.states"),
            ),
        ]
    }

    /// Render the `nadroid-serve-metrics/1` document: the stats
    /// counters, rolling rps / error-rate windows, and every histogram
    /// on the shared recorder (per-endpoint latency, queue wait, solver
    /// phases) with percentile readouts and full bucket detail.
    fn metrics_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"nadroid-serve-metrics/1\",\"ts\":{},\"uptime_secs\":{},\"requests_total\":{}",
            Telemetry::epoch_secs(),
            self.telemetry.uptime_secs(),
            self.telemetry.requests_total()
        );
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.stats_fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", nadroid_core::esc(k));
        }
        out.push_str("},\"windows\":{");
        for (i, (secs, rps, error_rate)) in self.telemetry.window_rates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"rps_{secs}s\":{rps:.3},\"error_rate_{secs}s\":{error_rate:.4}"
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.recorder.histograms().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_us\":{},\"p50_us\":{},\"p90_us\":{},\
                 \"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"buckets\":[",
                nadroid_core::esc(name),
                h.count(),
                h.total(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.95),
                h.percentile(0.99),
                h.max()
            );
            for (j, (lo, hi, c)) in h.buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

impl Server {
    /// Bind `cfg.addr` and start accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable, or the
    /// open error for a configured access log.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        // Cancellation unwinds are routine here; keep them off stderr.
        obs::cancel::install_quiet_hook();
        let telemetry = Telemetry::new(&cfg.telemetry)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let recorder = Recorder::new();
        let stopping = Arc::new(AtomicBool::new(false));
        let pool = {
            let recorder = recorder.clone();
            Pool::new(cfg.workers, cfg.queue_cap, move || {
                Box::new(recorder.install())
            })
        };
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(cfg.cache_bytes)),
            recorder,
            pool,
            telemetry,
            stopping: Arc::clone(&stopping),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cfg,
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("nadroid-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder all request spans and `serve.*` metrics feed.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Current counters, as served by the `stats` op.
    #[must_use]
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        self.shared.stats_fields()
    }

    /// The `nadroid-serve-metrics/1` document, as served by the
    /// `metrics` op.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// Request a graceful shutdown: stop accepting, drain queued work.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
    }

    /// Wait for the accept loop and all workers to finish.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        self.shared.pool.join();
    }

    /// Block until a `shutdown` request (or [`Server::shutdown`]) lands,
    /// then drain and return the final counters. The CLI's `serve` mode.
    pub fn run_until_shutdown(&mut self) -> Vec<(String, u64)> {
        while !self.shared.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.join();
        self.shared.stats_fields()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("nadroid-serve-conn".to_owned())
                    .spawn(move || serve_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _installed = shared.recorder.install();
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.requests", 1);
        // Mint the request id at accept time; every path below echoes
        // it back in the response envelope.
        let rid = shared.telemetry.next_id();
        let t = Instant::now();
        let inline = |sh: &Shared, endpoint: &str, resp: Response| {
            sh.observe(
                &ReqCtx {
                    id: rid.clone(),
                    queue_us: 0,
                },
                endpoint,
                &resp,
                micros_since(t),
                None,
            );
            resp
        };
        let response = match Request::decode(line.trim_end()) {
            Err(message) => inline(shared, "unknown", Response::Error { message }),
            Ok(Request::Stats) => {
                let resp = Response::Stats {
                    fields: shared.stats_fields(),
                };
                inline(shared, "stats", resp)
            }
            Ok(Request::Metrics) => {
                let resp = Response::Metrics {
                    json: shared.metrics_json(),
                };
                inline(shared, "metrics", resp)
            }
            Ok(Request::Shutdown) => {
                let resp = inline(shared, "shutdown", Response::Shutdown);
                let _ = write_response(reader.get_mut(), &resp, &rid);
                shared.stopping.store(true, Ordering::SeqCst);
                return;
            }
            Ok(Request::Analyze { program, opts }) => {
                dispatch(shared, "analyze", rid.clone(), move |sh, ctx| {
                    sh.handle_analyze(&program, &opts, &ctx)
                })
            }
            Ok(Request::Explain { program, id, opts }) => {
                dispatch(shared, "explain", rid.clone(), move |sh, ctx| {
                    sh.handle_explain(&program, id.as_deref(), &opts, &ctx)
                })
            }
            Ok(Request::Confirm { program, opts }) => {
                dispatch(shared, "confirm", rid.clone(), move |sh, ctx| {
                    sh.handle_confirm(&program, &opts, &ctx)
                })
            }
        };
        if write_response(reader.get_mut(), &response, &rid).is_err() {
            return;
        }
    }
}

/// Offer a compute job to the pool and wait for its reply; a full queue
/// becomes an immediate `rejected` without blocking the connection. The
/// job clocks its own queue wait: the gap between submission here and a
/// worker actually picking it up.
fn dispatch<F>(shared: &Arc<Shared>, endpoint: &'static str, rid: String, work: F) -> Response
where
    F: FnOnce(&Shared, ReqCtx) -> Response + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Response>();
    let job_shared = Arc::clone(shared);
    let job_rid = rid.clone();
    let submitted_at = Instant::now();
    let job = Box::new(move || {
        let ctx = ReqCtx {
            id: job_rid,
            queue_us: micros_since(submitted_at),
        };
        let _ = tx.send(work(&job_shared, ctx));
    });
    let submitted = shared.pool.try_submit(job);
    obs::gauge("serve.queue_depth", shared.pool.queue_depth());
    obs::gauge("serve.inflight", shared.pool.inflight());
    match submitted {
        Submit::Accepted => rx.recv().unwrap_or_else(|_| Response::Error {
            message: "worker dropped the reply".to_owned(),
        }),
        Submit::Full(_) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.rejected", 1);
            let resp = Response::Rejected {
                retry_after_ms: shared.cfg.retry_after_ms,
            };
            shared.observe(
                &ReqCtx { id: rid, queue_us: 0 },
                endpoint,
                &resp,
                micros_since(submitted_at),
                None,
            );
            resp
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &Response, rid: &str) -> std::io::Result<()> {
    let mut line = response.encode_with_request_id(rid);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}
