//! The analysis server: a TCP accept loop in front of a [`Pool`] of
//! analysis workers and a shared [`ResultCache`].
//!
//! Request lifecycle:
//!
//! 1. A connection thread decodes one `nadroid-serve/1` line.
//! 2. `stats`/`shutdown` are answered inline (they never touch the
//!    solver). `analyze`/`explain` are wrapped into a job and offered
//!    to the pool; a full queue is answered `rejected` immediately —
//!    admission control, not buffering.
//! 3. On a worker, the job first consults the content-addressed cache
//!    (warm path: a lookup and a clone). On a miss it installs the
//!    request's [`CancelToken`] and runs the full pipeline; a deadline
//!    firing unwinds at the next solver checkpoint, is caught at the
//!    job boundary, and becomes a structured `deadline_exceeded`
//!    response — the worker thread survives.
//!
//! Every stage reports through [`nadroid_obs`]: per-request spans,
//! `serve.*` counters, and queue-depth/inflight/cache-bytes gauges.

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::pool::{Pool, Submit};
use crate::protocol::{AnalyzeOpts, Request, Response};
use nadroid_core::{
    analyze, render_explain_from_json, render_provenance_json_with, AnalysisConfig,
};
use nadroid_detector::warning_id;
use nadroid_ir::parse_program;
use nadroid_obs::{self as obs, cancel::CancelToken, Recorder};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Analysis worker threads.
    pub workers: usize,
    /// Requested inner analysis threads per worker (the `--threads`
    /// flag). The effective value is clamped so that
    /// `workers x threads` never exceeds the machine's cores — see
    /// [`ServeConfig::effective_threads`]. Results are byte-identical
    /// at every value, so the clamp never changes a response.
    pub threads: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Submission-queue bound; past it requests are rejected.
    pub queue_cap: usize,
    /// Deadline applied when a request carries none (`None` = no limit).
    pub default_deadline_ms: Option<u64>,
    /// Backoff suggested to rejected clients.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7911".to_owned(),
            workers: 4,
            threads: 1,
            cache_bytes: 64 << 20,
            queue_cap: 16,
            default_deadline_ms: None,
            retry_after_ms: 50,
        }
    }
}

impl ServeConfig {
    /// The inner thread count each worker actually runs with: the
    /// requested `threads`, clamped so the pool's total concurrency
    /// (`workers x threads`) stays within the machine's core budget.
    /// Admission control already bounds the number of jobs in flight;
    /// this keeps inner parallelism from oversubscribing beneath it.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let per_worker = cores / self.workers.max(1);
        self.threads.max(1).min(per_worker.max(1))
    }
}

struct Shared {
    cfg: ServeConfig,
    cache: Mutex<ResultCache>,
    recorder: Recorder,
    pool: Pool,
    stopping: Arc<AtomicBool>,
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// A running analysis service. Dropping it shuts the service down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn config_for(opts: &AnalyzeOpts, threads: usize) -> AnalysisConfig {
    let mut cfg = AnalysisConfig {
        k: opts.k,
        threads,
        ..AnalysisConfig::default()
    };
    if opts.sound_only {
        cfg.unsound_filters.clear();
    }
    cfg
}

impl Shared {
    /// Fetch-or-compute the cached result for `(source, opts)`. `Ok`
    /// carries `(result, came_from_cache)`; `Err` is a ready-to-send
    /// failure response.
    fn cached_result(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
    ) -> Result<(CachedResult, bool), Response> {
        let config = config_for(opts, self.cfg.effective_threads());
        let key = CacheKey::of(source, &config);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            obs::counter("serve.cache.hits", 1);
            return Ok((hit, true));
        }
        obs::counter("serve.cache.misses", 1);
        let result = self.compute(source, opts, &config)?;
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let before = cache.stats().evictions;
            cache.insert(key, result.clone());
            let evicted = cache.stats().evictions - before;
            if evicted > 0 {
                obs::counter("serve.cache.evictions", evicted);
            }
            obs::gauge("serve.cache.bytes", cache.bytes() as u64);
        }
        Ok((result, false))
    }

    /// The cold path: parse, run the pipeline under the request's
    /// cancel token, and package everything a response (or a later
    /// `explain`) needs.
    fn compute(
        &self,
        source: &str,
        opts: &AnalyzeOpts,
        config: &AnalysisConfig,
    ) -> Result<CachedResult, Response> {
        let deadline_ms = opts.deadline_ms.or(self.cfg.default_deadline_ms);
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let program = parse_program(source)
            .map_err(|e| Response::Error {
                message: format!("parse error: {e}"),
            })?;
        // A zero (or already-elapsed) deadline must not reach the
        // solver at all.
        if token.is_cancelled() {
            return Err(Response::DeadlineExceeded {
                deadline_ms: deadline_ms.unwrap_or(0),
            });
        }
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _scope = token.install();
            let _span = obs::span("serve.analyze");
            let analysis = analyze(&program, config);
            let provenances = analysis.warning_provenances();
            let provenance_json = render_provenance_json_with(&analysis, &provenances);
            let warning_ids = analysis
                .survivors()
                .iter()
                .map(|w| warning_id(&program, analysis.threads(), w))
                .collect();
            CachedResult {
                app: program.name().to_owned(),
                summary: analysis.summary(),
                warning_ids,
                provenance_json,
                compute_micros: 0,
            }
        }));
        match outcome {
            Ok(mut result) => {
                result.compute_micros = micros_since(t);
                Ok(result)
            }
            Err(payload) => {
                if obs::cancel::was_cancelled(&*payload) {
                    Err(Response::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    })
                } else {
                    Err(Response::Error {
                        message: "analysis panicked".to_owned(),
                    })
                }
            }
        }
    }

    fn handle_analyze(&self, source: &str, opts: &AnalyzeOpts) -> Response {
        let t = Instant::now();
        let _span = obs::span("serve.request");
        let resp = match self.cached_result(source, opts) {
            Ok((result, cached)) => Response::Analyze {
                app: result.app,
                cached,
                micros: micros_since(t),
                summary: result.summary,
                warnings: result.warning_ids,
            },
            Err(resp) => resp,
        };
        self.account(&resp);
        resp
    }

    fn handle_explain(&self, source: &str, id: Option<&str>, opts: &AnalyzeOpts) -> Response {
        let t = Instant::now();
        let _span = obs::span("serve.request");
        let resp = match self.cached_result(source, opts) {
            Ok((result, cached)) => {
                match render_explain_from_json(&result.provenance_json, id) {
                    Ok(text) => Response::Explain {
                        cached,
                        micros: micros_since(t),
                        text,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            Err(resp) => resp,
        };
        self.account(&resp);
        resp
    }

    fn account(&self, resp: &Response) {
        match resp {
            Response::DeadlineExceeded { .. } => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve.deadline_exceeded", 1);
            }
            Response::Error { .. } => {
                obs::counter("serve.errors", 1);
            }
            _ => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve.completed", 1);
            }
        }
    }

    fn stats_fields(&self) -> Vec<(String, u64)> {
        let (cache_stats, cache_bytes, cache_entries) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.stats(), cache.bytes() as u64, cache.entries() as u64)
        };
        let f = |name: &str, value: u64| (name.to_owned(), value);
        vec![
            f("requests", self.requests.load(Ordering::Relaxed)),
            f("completed", self.completed.load(Ordering::Relaxed)),
            f("rejected", self.rejected.load(Ordering::Relaxed)),
            f(
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            f("cache_hits", cache_stats.hits),
            f("cache_misses", cache_stats.misses),
            f("cache_evictions", cache_stats.evictions),
            f("cache_bytes", cache_bytes),
            f("cache_entries", cache_entries),
            f("queue_depth", self.pool.queue_depth()),
            f("inflight", self.pool.inflight()),
            f("workers", self.cfg.workers as u64),
            // Inner analysis parallelism: the clamped value each worker
            // runs with, plus the raw request so operators can see when
            // the core budget reduced it.
            f("threads", self.cfg.effective_threads() as u64),
            f("threads_requested", self.cfg.threads.max(1) as u64),
            // HB-graph aggregates across every analysis the workers ran
            // (worker threads install the shared recorder, so the hb.*
            // counters accumulate here).
            f("hb.edges", self.recorder.counter_value("hb.edges")),
            f(
                "hb.closure_micros",
                self.recorder.counter_value("hb.closure_micros"),
            ),
            f(
                "detector.mhp_prepruned",
                self.recorder.counter_value("detector.mhp_prepruned"),
            ),
        ]
    }
}

impl Server {
    /// Bind `cfg.addr` and start accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        // Cancellation unwinds are routine here; keep them off stderr.
        obs::cancel::install_quiet_hook();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let recorder = Recorder::new();
        let stopping = Arc::new(AtomicBool::new(false));
        let pool = {
            let recorder = recorder.clone();
            Pool::new(cfg.workers, cfg.queue_cap, move || {
                Box::new(recorder.install())
            })
        };
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(cfg.cache_bytes)),
            recorder,
            pool,
            stopping: Arc::clone(&stopping),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cfg,
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("nadroid-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder all request spans and `serve.*` metrics feed.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Current counters, as served by the `stats` op.
    #[must_use]
    pub fn stats_fields(&self) -> Vec<(String, u64)> {
        self.shared.stats_fields()
    }

    /// Request a graceful shutdown: stop accepting, drain queued work.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
    }

    /// Wait for the accept loop and all workers to finish.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        self.shared.pool.join();
    }

    /// Block until a `shutdown` request (or [`Server::shutdown`]) lands,
    /// then drain and return the final counters. The CLI's `serve` mode.
    pub fn run_until_shutdown(&mut self) -> Vec<(String, u64)> {
        while !self.shared.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.join();
        self.shared.stats_fields()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("nadroid-serve-conn".to_owned())
                    .spawn(move || serve_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _installed = shared.recorder.install();
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.requests", 1);
        let response = match Request::decode(line.trim_end()) {
            Err(message) => Response::Error { message },
            Ok(Request::Stats) => Response::Stats {
                fields: shared.stats_fields(),
            },
            Ok(Request::Shutdown) => {
                let _ = write_response(reader.get_mut(), &Response::Shutdown);
                shared.stopping.store(true, Ordering::SeqCst);
                return;
            }
            Ok(Request::Analyze { program, opts }) => {
                dispatch(shared, move |sh| sh.handle_analyze(&program, &opts))
            }
            Ok(Request::Explain { program, id, opts }) => dispatch(shared, move |sh| {
                sh.handle_explain(&program, id.as_deref(), &opts)
            }),
        };
        if write_response(reader.get_mut(), &response).is_err() {
            return;
        }
    }
}

/// Offer a compute job to the pool and wait for its reply; a full queue
/// becomes an immediate `rejected` without blocking the connection.
fn dispatch<F>(shared: &Arc<Shared>, work: F) -> Response
where
    F: FnOnce(&Shared) -> Response + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Response>();
    let job_shared = Arc::clone(shared);
    let job = Box::new(move || {
        let _ = tx.send(work(&job_shared));
    });
    let submitted = shared.pool.try_submit(job);
    obs::gauge("serve.queue_depth", shared.pool.queue_depth());
    obs::gauge("serve.inflight", shared.pool.inflight());
    match submitted {
        Submit::Accepted => rx.recv().unwrap_or_else(|_| Response::Error {
            message: "worker dropped the reply".to_owned(),
        }),
        Submit::Full(_) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve.rejected", 1);
            Response::Rejected {
                retry_after_ms: shared.cfg.retry_after_ms,
            }
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}
