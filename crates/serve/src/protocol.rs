//! The `nadroid-serve/1` wire protocol: newline-delimited JSON over
//! TCP, one request object per line, one response object per line.
//!
//! Encoding reuses `nadroid_core::json::esc`; decoding reuses
//! `nadroid_core::parse_json`, so the serving layer introduces no new
//! serialization machinery. See `docs/serving.md` for the schema.

use nadroid_core::{esc, parse_json, JsonValue, Summary};
use std::fmt::Write as _;

/// Protocol identifier carried by every message.
pub const SCHEMA: &str = "nadroid-serve/1";

/// Per-request analysis options (the cache key covers all of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOpts {
    /// Points-to sensitivity.
    pub k: u32,
    /// Skip the unsound filter tier.
    pub sound_only: bool,
    /// Per-request deadline override in milliseconds; `None` uses the
    /// server default (which may be unlimited).
    pub deadline_ms: Option<u64>,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            k: 2,
            sound_only: false,
            deadline_ms: None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or serve from cache) the full pipeline over a DSL program.
    Analyze {
        /// DSL source text.
        program: String,
        /// Analysis options.
        opts: AnalyzeOpts,
    },
    /// Explain one warning (or all) — served from cached provenance
    /// when the program was analyzed before.
    Explain {
        /// DSL source text.
        program: String,
        /// Stable warning id; `None` explains every warning.
        id: Option<String>,
        /// Analysis options (part of the cache key).
        opts: AnalyzeOpts,
    },
    /// Dynamically confirm every surviving warning of a DSL program
    /// (schedule synthesis; see `docs/confirm.md`). The rendered
    /// `nadroid-confirm/1` document is cached alongside the provenance,
    /// so repeat confirmations are a lookup.
    Confirm {
        /// DSL source text.
        program: String,
        /// Analysis options (part of the cache key).
        opts: AnalyzeOpts,
    },
    /// Server counters snapshot.
    Stats,
    /// Machine-readable metrics document (`nadroid-serve-metrics/1`):
    /// counters, rolling rps/error-rate windows, and per-endpoint
    /// latency histograms with bucket detail.
    Metrics,
    /// Graceful shutdown: drain the queue, then exit.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful analysis.
    Analyze {
        /// App name.
        app: String,
        /// Whether the result came from the cache.
        cached: bool,
        /// Server-side handling time.
        micros: u64,
        /// The Table 1 row counts.
        summary: Summary,
        /// Stable ids of warnings surviving all filters.
        warnings: Vec<String>,
    },
    /// Successful explain.
    Explain {
        /// Whether the provenance came from the cache.
        cached: bool,
        /// Server-side handling time.
        micros: u64,
        /// The `nadroid explain` text.
        text: String,
    },
    /// Successful confirmation: the `nadroid-confirm/1` document,
    /// transported as a string field (like `Metrics`).
    Confirm {
        /// Whether the document came from the cache.
        cached: bool,
        /// Server-side handling time.
        micros: u64,
        /// The `nadroid-confirm/1` document.
        json: String,
    },
    /// Counters snapshot, in stable name order.
    Stats {
        /// `(name, value)` pairs.
        fields: Vec<(String, u64)>,
    },
    /// Metrics exposition: a complete `nadroid-serve-metrics/1` JSON
    /// document, transported as a string field (the in-repo JSON layer
    /// has no generic renderer, so the server builds the document and
    /// the envelope carries it opaquely).
    Metrics {
        /// The `nadroid-serve-metrics/1` document.
        json: String,
    },
    /// Shutdown acknowledged.
    Shutdown,
    /// Admission control: the submission queue is full. Retry after the
    /// indicated backoff instead of buffering unboundedly server-side.
    Rejected {
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the analysis finished; the
    /// worker unwound at a cancellation checkpoint and stays healthy.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline_ms: u64,
    },
    /// Malformed request or failed analysis.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn push_opts(out: &mut String, opts: &AnalyzeOpts) {
    let _ = write!(out, "\"k\":{},\"sound_only\":{}", opts.k, opts.sound_only);
    if let Some(d) = opts.deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{d}");
    }
}

impl Request {
    /// Encode as one protocol line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",");
        match self {
            Request::Analyze { program, opts } => {
                out.push_str("\"op\":\"analyze\",");
                push_opts(&mut out, opts);
                let _ = write!(out, ",\"program\":\"{}\"", esc(program));
            }
            Request::Explain { program, id, opts } => {
                out.push_str("\"op\":\"explain\",");
                push_opts(&mut out, opts);
                if let Some(id) = id {
                    let _ = write!(out, ",\"id\":\"{}\"", esc(id));
                }
                let _ = write!(out, ",\"program\":\"{}\"", esc(program));
            }
            Request::Confirm { program, opts } => {
                out.push_str("\"op\":\"confirm\",");
                push_opts(&mut out, opts);
                let _ = write!(out, ",\"program\":\"{}\"", esc(program));
            }
            Request::Stats => out.push_str("\"op\":\"stats\""),
            Request::Metrics => out.push_str("\"op\":\"metrics\""),
            Request::Shutdown => out.push_str("\"op\":\"shutdown\""),
        }
        out.push('}');
        out
    }

    /// Decode one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong schema, or a
    /// missing/unknown `op`.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = parse_json(line)?;
        check_schema(&v)?;
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "request has no op".to_owned())?;
        let opts = || AnalyzeOpts {
            #[allow(clippy::cast_possible_truncation)]
            k: v.get("k").and_then(JsonValue::as_u64).unwrap_or(2) as u32,
            sound_only: v
                .get("sound_only")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            deadline_ms: v.get("deadline_ms").and_then(JsonValue::as_u64),
        };
        let program = || {
            v.get("program")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{op} request has no program"))
        };
        match op {
            "analyze" => Ok(Request::Analyze {
                program: program()?,
                opts: opts(),
            }),
            "explain" => Ok(Request::Explain {
                program: program()?,
                id: v.get("id").and_then(JsonValue::as_str).map(str::to_owned),
                opts: opts(),
            }),
            "confirm" => Ok(Request::Confirm {
                program: program()?,
                opts: opts(),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// The `request_id` a response line carries, if any. Every response
/// from a `nadroid-serve` daemon carries one (minted at accept time);
/// responses encoded by other tooling may not.
#[must_use]
pub fn request_id_of(line: &str) -> Option<String> {
    let v = parse_json(line).ok()?;
    v.get("request_id")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
}

fn check_schema(v: &JsonValue) -> Result<(), String> {
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(SCHEMA) => Ok(()),
        Some(other) => Err(format!("unsupported schema `{other}`")),
        None => Err("message has no schema".into()),
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"loc\":{},\"ec\":{},\"pc\":{},\"threads\":{},\"potential\":{},\"after_sound\":{},\"after_unsound\":{},\"refuted\":{},\"after_refutation\":{}}}",
        s.loc,
        s.ec,
        s.pc,
        s.threads,
        s.potential,
        s.after_sound,
        s.after_unsound,
        s.refuted,
        s.after_refutation
    )
}

fn summary_from_json(v: &JsonValue) -> Result<Summary, String> {
    let field = |key: &str| -> Result<usize, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
            .ok_or_else(|| format!("summary missing `{key}`"))
    };
    // The refutation fields arrived with nadroid-provenance/4-era
    // builds; default them to the no-refutation reading so documents
    // from older peers still parse.
    let after_unsound = field("after_unsound")?;
    let opt = |key: &str| -> Option<usize> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
    };
    Ok(Summary {
        loc: field("loc")?,
        ec: field("ec")?,
        pc: field("pc")?,
        threads: field("threads")?,
        potential: field("potential")?,
        after_sound: field("after_sound")?,
        after_unsound,
        refuted: opt("refuted").unwrap_or(0),
        after_refutation: opt("after_refutation").unwrap_or(after_unsound),
    })
}

impl Response {
    /// Encode as one protocol line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",");
        match self {
            Response::Analyze {
                app,
                cached,
                micros,
                summary,
                warnings,
            } => {
                let ids: Vec<String> = warnings.iter().map(|w| format!("\"{}\"", esc(w))).collect();
                let _ = write!(
                    out,
                    "\"status\":\"ok\",\"op\":\"analyze\",\"app\":\"{}\",\"cached\":{cached},\
                     \"micros\":{micros},\"summary\":{},\"warnings\":[{}]",
                    esc(app),
                    summary_json(summary),
                    ids.join(",")
                );
            }
            Response::Explain {
                cached,
                micros,
                text,
            } => {
                let _ = write!(
                    out,
                    "\"status\":\"ok\",\"op\":\"explain\",\"cached\":{cached},\
                     \"micros\":{micros},\"text\":\"{}\"",
                    esc(text)
                );
            }
            Response::Confirm {
                cached,
                micros,
                json,
            } => {
                let _ = write!(
                    out,
                    "\"status\":\"ok\",\"op\":\"confirm\",\"cached\":{cached},\
                     \"micros\":{micros},\"confirm_json\":\"{}\"",
                    esc(json)
                );
            }
            Response::Stats { fields } => {
                out.push_str("\"status\":\"ok\",\"op\":\"stats\",\"stats\":{");
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{value}", esc(name));
                }
                out.push('}');
            }
            Response::Metrics { json } => {
                let _ = write!(
                    out,
                    "\"status\":\"ok\",\"op\":\"metrics\",\"metrics_json\":\"{}\"",
                    esc(json)
                );
            }
            Response::Shutdown => out.push_str("\"status\":\"ok\",\"op\":\"shutdown\""),
            Response::Rejected { retry_after_ms } => {
                let _ = write!(
                    out,
                    "\"status\":\"rejected\",\"retry_after_ms\":{retry_after_ms}"
                );
            }
            Response::DeadlineExceeded { deadline_ms } => {
                let _ = write!(
                    out,
                    "\"status\":\"deadline_exceeded\",\"deadline_ms\":{deadline_ms}"
                );
            }
            Response::Error { message } => {
                let _ = write!(out, "\"status\":\"error\",\"message\":\"{}\"", esc(message));
            }
        }
        out.push('}');
        out
    }

    /// [`Response::encode`], with the server-minted request id spliced
    /// in as a trailing `"request_id"` member. Decoding ignores the
    /// field (it is attribution metadata, not payload); clients read it
    /// via [`request_id_of`].
    #[must_use]
    pub fn encode_with_request_id(&self, request_id: &str) -> String {
        let mut out = self.encode();
        debug_assert!(out.ends_with('}'));
        out.pop();
        let _ = write!(out, ",\"request_id\":\"{}\"}}", esc(request_id));
        out
    }

    /// Decode one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong schema, or an
    /// unknown status/op combination.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = parse_json(line)?;
        check_schema(&v)?;
        let status = v
            .get("status")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "response has no status".to_owned())?;
        match status {
            "rejected" => Ok(Response::Rejected {
                retry_after_ms: v
                    .get("retry_after_ms")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
            }),
            "deadline_exceeded" => Ok(Response::DeadlineExceeded {
                deadline_ms: v
                    .get("deadline_ms")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
            }),
            "error" => Ok(Response::Error {
                message: v
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown error")
                    .to_owned(),
            }),
            "ok" => {
                let op = v
                    .get("op")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "ok response has no op".to_owned())?;
                let micros = v.get("micros").and_then(JsonValue::as_u64).unwrap_or(0);
                let cached = v
                    .get("cached")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false);
                match op {
                    "analyze" => Ok(Response::Analyze {
                        app: v
                            .get("app")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_owned(),
                        cached,
                        micros,
                        summary: summary_from_json(
                            v.get("summary")
                                .ok_or_else(|| "analyze response has no summary".to_owned())?,
                        )?,
                        warnings: v
                            .get("warnings")
                            .and_then(JsonValue::as_arr)
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(JsonValue::as_str)
                            .map(str::to_owned)
                            .collect(),
                    }),
                    "explain" => Ok(Response::Explain {
                        cached,
                        micros,
                        text: v
                            .get("text")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_owned(),
                    }),
                    "confirm" => Ok(Response::Confirm {
                        cached,
                        micros,
                        json: v
                            .get("confirm_json")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_owned(),
                    }),
                    "stats" => Ok(Response::Stats {
                        fields: match v.get("stats") {
                            Some(JsonValue::Obj(members)) => members
                                .iter()
                                .filter_map(|(k, val)| val.as_u64().map(|n| (k.clone(), n)))
                                .collect(),
                            _ => Vec::new(),
                        },
                    }),
                    "metrics" => Ok(Response::Metrics {
                        json: v
                            .get("metrics_json")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_owned(),
                    }),
                    "shutdown" => Ok(Response::Shutdown),
                    other => Err(format!("unknown response op `{other}`")),
                }
            }
            other => Err(format!("unknown status `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let line = req.encode();
        assert!(!line.contains('\n'), "one line per message: {line}");
        assert_eq!(&Request::decode(&line).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let line = resp.encode();
        assert!(!line.contains('\n'), "one line per message: {line}");
        assert_eq!(&Response::decode(&line).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip_including_multiline_programs() {
        round_trip_request(&Request::Analyze {
            program: "app X\nactivity M {\n  cb onClick { }\n}\n".into(),
            opts: AnalyzeOpts::default(),
        });
        round_trip_request(&Request::Analyze {
            program: "app \"quoted\"".into(),
            opts: AnalyzeOpts {
                k: 3,
                sound_only: true,
                deadline_ms: Some(250),
            },
        });
        round_trip_request(&Request::Explain {
            program: "app Y".into(),
            id: Some("w:0011223344556677".into()),
            opts: AnalyzeOpts::default(),
        });
        round_trip_request(&Request::Explain {
            program: "app Y".into(),
            id: None,
            opts: AnalyzeOpts::default(),
        });
        round_trip_request(&Request::Confirm {
            program: "app Z\nactivity M {\n  cb onClick { }\n}\n".into(),
            opts: AnalyzeOpts {
                k: 2,
                sound_only: false,
                deadline_ms: Some(5000),
            },
        });
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Metrics);
        round_trip_request(&Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Analyze {
            app: "ConnectBot".into(),
            cached: true,
            micros: 42,
            summary: Summary {
                loc: 10,
                ec: 2,
                pc: 1,
                threads: 3,
                potential: 5,
                after_sound: 2,
                after_unsound: 1,
                refuted: 0,
                after_refutation: 1,
            },
            warnings: vec!["w:0011223344556677".into(), "w:8899aabbccddeeff".into()],
        });
        round_trip_response(&Response::Explain {
            cached: false,
            micros: 9,
            text: "warning w:..\n  field: x\n".into(),
        });
        round_trip_response(&Response::Confirm {
            cached: true,
            micros: 77,
            json: "{\"schema\":\"nadroid-confirm/1\",\"tally\":{\"confirmed\":1}}".into(),
        });
        round_trip_response(&Response::Stats {
            fields: vec![("cache_hits".into(), 3), ("requests".into(), 4)],
        });
        round_trip_response(&Response::Metrics {
            json: "{\"schema\":\"nadroid-serve-metrics/1\",\"counters\":{}}".into(),
        });
        round_trip_response(&Response::Shutdown);
        round_trip_response(&Response::Rejected { retry_after_ms: 50 });
        round_trip_response(&Response::DeadlineExceeded { deadline_ms: 100 });
        round_trip_response(&Response::Error {
            message: "parse error: line 3".into(),
        });
    }

    #[test]
    fn request_ids_ride_the_envelope_without_breaking_decode() {
        let resp = Response::Shutdown;
        let line = resp.encode_with_request_id("r0000002a");
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(request_id_of(&line).as_deref(), Some("r0000002a"));
        assert_eq!(Response::decode(&line).unwrap(), resp, "id is metadata");
        assert_eq!(request_id_of(&resp.encode()), None);
        // The embedded metrics document survives the splice intact.
        let m = Response::Metrics {
            json: "{\"schema\":\"nadroid-serve-metrics/1\"}".into(),
        };
        let line = m.encode_with_request_id("r00000001");
        match Response::decode(&line).unwrap() {
            Response::Metrics { json } => {
                assert!(nadroid_core::parse_json(&json).is_ok(), "{json}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_and_ops_are_rejected() {
        assert!(Request::decode("{\"op\":\"analyze\"}").is_err(), "no schema");
        assert!(
            Request::decode("{\"schema\":\"nadroid-serve/2\",\"op\":\"stats\"}").is_err(),
            "future schema"
        );
        assert!(
            Request::decode("{\"schema\":\"nadroid-serve/1\",\"op\":\"frobnicate\"}").is_err()
        );
        assert!(
            Request::decode("{\"schema\":\"nadroid-serve/1\",\"op\":\"analyze\"}").is_err(),
            "analyze needs a program"
        );
        assert!(Response::decode("{\"schema\":\"nadroid-serve/1\"}").is_err());
    }
}
