//! A long-running analysis service for nAdroid-rs.
//!
//! Analyzing an app is expensive (points-to fixpoint, filter pipeline,
//! provenance derivation) but **deterministic**: the same program under
//! the same configuration always yields the byte-identical warning set
//! — the determinism regression suite pins this. That makes results
//! perfectly cacheable, and this crate turns the batch pipeline into a
//! daemon exploiting it:
//!
//! - [`server::Server`] — a TCP daemon speaking newline-delimited JSON
//!   ([`protocol`], schema `nadroid-serve/1`) over `std::net`.
//! - A bounded worker [`pool`] with **admission control**: a full queue
//!   answers `rejected` + `retry_after_ms` instead of buffering without
//!   bound.
//! - A content-addressed result [`cache`] keyed by
//!   `(program-hash, config-hash)` under an LRU byte budget; warm
//!   requests (including `explain`, served from cached provenance) are
//!   a lookup, not a re-solve.
//! - **Per-request deadlines** riding the cooperative cancellation
//!   checkpoints in the solver loops (`nadroid_obs::cancel`); an
//!   expired deadline is a structured `deadline_exceeded` response and
//!   the worker survives.
//!
//! Everything reports through [`nadroid_obs`]: `serve.request` /
//! `serve.analyze` spans, `serve.*` counters, queue-depth / inflight /
//! cache-bytes gauges. The workspace stays dependency-free: encoding
//! reuses `nadroid_core::json`, transport is `std::net`.
//!
//! # Example
//!
//! ```
//! use nadroid_serve::client::Client;
//! use nadroid_serve::protocol::{AnalyzeOpts, Response};
//! use nadroid_serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let program = "app Demo\nactivity A {\n  field f: A\n  cb onCreate { f = new A }\n}\n";
//! let cold = client.analyze(program, AnalyzeOpts::default()).unwrap();
//! let warm = client.analyze(program, AnalyzeOpts::default()).unwrap();
//! match (cold, warm) {
//!     (Response::Analyze { cached: c1, .. }, Response::Analyze { cached: c2, .. }) => {
//!         assert!(!c1 && c2, "second request is served from the cache");
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use cache::{CacheKey, CacheStats, CachedResult, ResultCache};
pub use client::Client;
pub use protocol::{AnalyzeOpts, Request, Response, SCHEMA};
pub use server::{ServeConfig, Server};
pub use telemetry::{Telemetry, TelemetryConfig};
