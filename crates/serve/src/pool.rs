//! A fixed-size worker pool with a bounded submission queue.
//!
//! Admission control happens at submit time: when the queue is full,
//! [`Pool::try_submit`] hands the job straight back instead of
//! buffering it, and the server turns that into a
//! `rejected`/`retry_after_ms` response. Workers run every job under
//! `catch_unwind`, so a panicking analysis (including the cooperative
//! cancellation unwind) never poisons a worker thread.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work; replies travel through channels captured by the
/// closure, so the pool itself is payload-agnostic.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    cap: usize,
    available: Condvar,
    stopping: AtomicBool,
    inflight: AtomicU64,
}

/// The outcome of a submission attempt.
pub enum Submit {
    /// The job was queued.
    Accepted,
    /// The queue was at capacity; the job is returned untouched so the
    /// caller can reply `rejected` (or retry) without losing it.
    Full(Job),
}

/// A sharded worker pool: N OS threads draining one bounded queue.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawn `workers` threads with a submission queue bounded at
    /// `queue_cap` jobs. `on_start` runs once on each worker thread
    /// before it begins draining; whatever it returns stays alive for
    /// the worker's lifetime (the server returns the obs recorder's
    /// installation guard from it).
    pub fn new<F>(workers: usize, queue_cap: usize, on_start: F) -> Pool
    where
        F: Fn() -> Box<dyn Any> + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap: queue_cap.max(1),
            available: Condvar::new(),
            stopping: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
        });
        let on_start = Arc::new(on_start);
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let on_start = Arc::clone(&on_start);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("nadroid-serve-worker-{i}"))
                    .spawn(move || {
                        let _ctx = on_start();
                        worker_loop(&shared);
                    })
                    .expect("spawn worker thread"),
            );
        }
        Pool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Try to enqueue a job without blocking.
    pub fn try_submit(&self, job: Job) -> Submit {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        if self.shared.stopping.load(Ordering::SeqCst) || queue.len() >= self.shared.cap {
            return Submit::Full(job);
        }
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
        Submit::Accepted
    }

    /// Jobs waiting to be picked up.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue.lock().expect("queue lock").len() as u64
    }

    /// Jobs currently executing on a worker.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Stop accepting work and wake every worker. Already-queued jobs
    /// still run (graceful drain).
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Wait for all workers to finish their drain and exit.
    pub fn join(&self) {
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("workers lock").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue wait");
            }
        };
        let Some(job) = job else { return };
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        // Cancellation unwinds and analysis bugs both land here; the
        // job's reply channel communicates the outcome, the worker
        // itself stays healthy either way.
        let _ = catch_unwind(AssertUnwindSafe(job));
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn no_ctx() -> Box<dyn Any> {
        Box::new(())
    }

    #[test]
    fn full_queue_hands_the_job_back_and_drains_after_release() {
        // One worker blocked on a gate + cap-2 queue: the 4th submit
        // must be rejected deterministically.
        let pool = Pool::new(1, 2, no_ctx);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let gate_rx = Arc::new(gate_rx);
        let (done_tx, done_rx) = mpsc::channel::<u32>();

        // Job 0 occupies the worker until the gate opens.
        let rx = Arc::clone(&gate_rx);
        let tx = done_tx.clone();
        assert!(matches!(
            pool.try_submit(Box::new(move || {
                rx.lock().unwrap().recv().unwrap();
                tx.send(0).unwrap();
            })),
            Submit::Accepted
        ));
        // Wait until the worker actually picked it up so the queue is
        // empty again; then two more fill the queue to cap.
        while pool.inflight() == 0 {
            std::thread::yield_now();
        }
        for i in [1u32, 2] {
            let tx = done_tx.clone();
            assert!(matches!(
                pool.try_submit(Box::new(move || tx.send(i).unwrap())),
                Submit::Accepted
            ));
        }
        let tx = done_tx.clone();
        let Submit::Full(job) = pool.try_submit(Box::new(move || tx.send(3).unwrap())) else {
            panic!("queue at cap must reject");
        };
        drop(job); // the caller owns the rejected job again
        assert_eq!(pool.queue_depth(), 2);

        gate_tx.send(()).unwrap();
        let mut got: Vec<u32> = (0..3).map(|_| done_rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn panicking_jobs_do_not_poison_the_worker() {
        let pool = Pool::new(1, 4, no_ctx);
        let (tx, rx) = mpsc::channel::<&'static str>();
        assert!(matches!(
            pool.try_submit(Box::new(|| panic!("job bug"))),
            Submit::Accepted
        ));
        assert!(matches!(
            pool.try_submit(Box::new(move || tx.send("alive").unwrap())),
            Submit::Accepted
        ));
        assert_eq!(rx.recv().unwrap(), "alive");
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(2, 8, no_ctx);
        let (tx, rx) = mpsc::channel::<u32>();
        for i in 0..5u32 {
            let tx = tx.clone();
            assert!(matches!(
                pool.try_submit(Box::new(move || tx.send(i).unwrap())),
                Submit::Accepted
            ));
        }
        pool.shutdown();
        pool.join();
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(matches!(
            pool.try_submit(Box::new(|| {})),
            Submit::Full(_)
        ));
    }
}
