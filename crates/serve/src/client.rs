//! A small blocking client for the `nadroid-serve/1` protocol — used by
//! the CLI's `request` subcommand, the load-gen bench, and the tests.

use crate::protocol::{self, AnalyzeOpts, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running server; requests are serial per client.
pub struct Client {
    reader: BufReader<TcpStream>,
    last_request_id: Option<String>,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A hung server must not wedge the caller forever.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            reader: BufReader::new(stream),
            last_request_id: None,
        })
    }

    /// The `request_id` carried by the most recent response, if any —
    /// the handle to quote when filing a slow request against the
    /// server's access log or slow-trace capture.
    #[must_use]
    pub fn last_request_id(&self) -> Option<&str> {
        self.last_request_id.as_deref()
    }

    /// Send one request and read its response line.
    ///
    /// # Errors
    ///
    /// Returns transport failures and protocol decode errors as text.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let mut line = req.encode();
        line.push('\n');
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err("server closed the connection".to_owned()),
            Ok(_) => {
                self.last_request_id = protocol::request_id_of(reply.trim_end());
                Response::decode(reply.trim_end())
            }
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// `analyze` a DSL program.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn analyze(&mut self, program: &str, opts: AnalyzeOpts) -> Result<Response, String> {
        self.request(&Request::Analyze {
            program: program.to_owned(),
            opts,
        })
    }

    /// `explain` one warning (or all with `id = None`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn explain(
        &mut self,
        program: &str,
        id: Option<&str>,
        opts: AnalyzeOpts,
    ) -> Result<Response, String> {
        self.request(&Request::Explain {
            program: program.to_owned(),
            id: id.map(str::to_owned),
            opts,
        })
    }

    /// `confirm` every surviving warning of a DSL program (dynamic
    /// schedule synthesis); the response carries the `nadroid-confirm/1`
    /// document.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn confirm(&mut self, program: &str, opts: AnalyzeOpts) -> Result<Response, String> {
        self.request(&Request::Confirm {
            program: program.to_owned(),
            opts,
        })
    }

    /// Fetch the server's counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<Response, String> {
        self.request(&Request::Stats)
    }

    /// Fetch the server's `nadroid-serve-metrics/1` document.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<Response, String> {
        self.request(&Request::Metrics)
    }

    /// Ask the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.request(&Request::Shutdown)
    }

    /// [`Client::request`], retrying on `rejected` with the server's
    /// suggested backoff. Gives up after `max_attempts` rejections.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally returns an error once the
    /// attempt budget is exhausted.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        max_attempts: u32,
    ) -> Result<Response, String> {
        for _ in 0..max_attempts.max(1) {
            match self.request(req)? {
                Response::Rejected { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                other => return Ok(other),
            }
        }
        Err(format!("still rejected after {max_attempts} attempts"))
    }
}
