//! Per-request production telemetry for the serving layer.
//!
//! Everything here is *attribution* machinery — the data an operator
//! needs to explain a p99 outlier after the fact:
//!
//! - **Request ids** ([`Telemetry::next_id`]): a monotonic sequence
//!   minted at accept time (`r` + 8 hex digits), echoed in every
//!   response line as `request_id`, threaded through the worker and
//!   the cancel token, and used to name slow-request trace files.
//! - **Latency histograms**: every completed request records its
//!   service time into `serve.latency.<endpoint>.<outcome>` and its
//!   queue wait into `serve.queue_wait.<endpoint>` (log-bucketed
//!   [`nadroid_obs::hist`] histograms on the server's shared
//!   recorder), exposed by the `metrics` op.
//! - **Rolling windows**: per-second request/error rings aggregated
//!   into 1s/10s/60s rps and error-rate readouts.
//! - **Access log**: one JSONL line per (sampled) request — id,
//!   endpoint, outcome, queue/service micros, cache key, threads.
//! - **Slow-request capture**: when a request's service time crosses
//!   the configured threshold, its full obs span tree is serialized as
//!   `slow-<id>.trace.json` next to the access log.
//!
//! The recording paths are compiled out when the crate's `telemetry`
//! feature is off (mirroring `nadroid-obs`'s `enabled` gate): ids,
//! uptime and the request sequence survive — they are protocol
//! surface — but histograms, windows, the access log and slow capture
//! all become no-ops.

use crate::cache::CacheKey;
#[cfg(feature = "telemetry")]
use nadroid_obs as obs;
use std::io;
#[cfg(feature = "telemetry")]
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Telemetry knobs, carried inside `ServeConfig`.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// JSONL access-log path (`serve --access-log`); `None` disables
    /// the log (histograms and windows still record).
    pub access_log: Option<String>,
    /// Service-time threshold in microseconds past which a request's
    /// span tree is captured (`serve --slow-us`); `None` disables
    /// capture. `Some(0)` captures every computed request.
    pub slow_us: Option<u64>,
    /// Log every `n`-th request (`serve --log-sample`); 0 and 1 both
    /// mean every request. Sampling applies to the access log only —
    /// histograms and windows always see every request.
    pub log_sample: u64,
}

/// One request's outcome, as reported to [`Telemetry::observe`].
#[derive(Debug)]
pub struct RequestEvent<'a> {
    /// The request id minted at accept time.
    pub id: &'a str,
    /// `analyze` / `explain` / `stats` / `metrics` / `unknown`.
    pub endpoint: &'a str,
    /// `hit` / `miss` / `rejected` / `deadline` / `error` / `ok`.
    pub outcome: &'a str,
    /// Micros between pool submission and a worker picking the job up
    /// (0 for inline-answered requests).
    pub queue_us: u64,
    /// Micros the server spent handling the request.
    pub service_us: u64,
    /// The content-addressed cache key, for requests that consulted
    /// the cache.
    pub cache_key: Option<CacheKey>,
    /// Effective inner analysis threads.
    pub threads: usize,
}

const WINDOW_SLOTS: usize = 61;

#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
struct Slot {
    second: u64,
    requests: u64,
    errors: u64,
}

/// A ring of per-second buckets covering the last 60 seconds. Writes
/// re-stamp a slot when its second has rolled over, so the ring never
/// needs a background sweeper.
#[derive(Debug)]
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
struct Windows {
    slots: [Slot; WINDOW_SLOTS],
}

#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
impl Windows {
    fn new() -> Windows {
        Windows {
            slots: [Slot::default(); WINDOW_SLOTS],
        }
    }

    fn bump(&mut self, sec: u64, error: bool) {
        #[allow(clippy::cast_possible_truncation)]
        let slot = &mut self.slots[(sec % WINDOW_SLOTS as u64) as usize];
        if slot.second != sec {
            *slot = Slot {
                second: sec,
                requests: 0,
                errors: 0,
            };
        }
        slot.requests += 1;
        if error {
            slot.errors += 1;
        }
    }

    /// `(rps, error_rate)` over the trailing `window` seconds ending
    /// at `now_sec` (inclusive of the current partial second).
    fn rate(&self, now_sec: u64, window: u64) -> (f64, f64) {
        let (mut requests, mut errors) = (0u64, 0u64);
        for s in &self.slots {
            if s.requests > 0 && s.second <= now_sec && now_sec - s.second < window {
                requests += s.requests;
                errors += s.errors;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let rps = requests as f64 / window.max(1) as f64;
        #[allow(clippy::cast_precision_loss)]
        let error_rate = if requests > 0 {
            errors as f64 / requests as f64
        } else {
            0.0
        };
        (rps, error_rate)
    }
}

/// The server's telemetry hub: id mint, rolling windows, access-log
/// sink, and slow-capture policy. One per [`crate::server::Server`].
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    seq: AtomicU64,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    slow_us: Option<u64>,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    log_sample: u64,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    log_seq: AtomicU64,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    sink: Option<Mutex<io::BufWriter<std::fs::File>>>,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    trace_dir: PathBuf,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    windows: Mutex<Windows>,
}

impl Telemetry {
    /// Build the hub; opens (creates/truncates) the access log when one
    /// is configured and the `telemetry` feature is on.
    ///
    /// # Errors
    ///
    /// Propagates the access-log open failure.
    pub fn new(cfg: &TelemetryConfig) -> io::Result<Telemetry> {
        let trace_dir = cfg
            .access_log
            .as_deref()
            .and_then(|p| {
                let parent = std::path::Path::new(p).parent()?;
                (!parent.as_os_str().is_empty()).then(|| parent.to_path_buf())
            })
            .unwrap_or_else(|| PathBuf::from("."));
        let sink = if cfg!(feature = "telemetry") {
            match cfg.access_log.as_deref() {
                Some(path) => Some(Mutex::new(io::BufWriter::new(std::fs::File::create(
                    path,
                )?))),
                None => None,
            }
        } else {
            None
        };
        Ok(Telemetry {
            started: Instant::now(),
            seq: AtomicU64::new(0),
            slow_us: cfg.slow_us,
            log_sample: cfg.log_sample.max(1),
            log_seq: AtomicU64::new(0),
            sink,
            trace_dir,
            windows: Mutex::new(Windows::new()),
        })
    }

    /// Mint the next request id: `r` + 8 lowercase hex digits of a
    /// monotonic per-server sequence (filename-safe — slow traces are
    /// named after it).
    pub fn next_id(&self) -> String {
        let n = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("r{n:08x}")
    }

    /// Total requests accepted so far (ids minted). Monotonic, so two
    /// `stats` snapshots are orderable even across identical counters.
    #[must_use]
    pub fn requests_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Whole seconds since the server started.
    #[must_use]
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Current wall clock as epoch seconds — the `ts` field of
    /// access-log lines and the `metrics` document, so serve telemetry
    /// can be correlated with the run ledger and logs from other
    /// processes (uptime alone cannot be).
    #[must_use]
    pub fn epoch_secs() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }

    /// Whether per-request span capture is on (`--slow-us` given).
    /// The server installs a per-request recorder only when this
    /// holds, so the feature costs nothing when unused.
    #[must_use]
    pub fn capture_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.slow_us.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        false
    }

    /// Whether a request with this service time crosses the slow
    /// threshold.
    #[must_use]
    pub fn is_slow(&self, service_us: u64) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.slow_us.is_some_and(|t| service_us >= t)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = service_us;
            false
        }
    }

    /// Record one finished request: latency + queue-wait histograms
    /// (into the recorder installed on the calling thread), the
    /// rolling windows, and a (sampled) access-log line.
    pub fn observe(&self, ev: &RequestEvent<'_>) {
        #[cfg(feature = "telemetry")]
        {
            obs::hist(
                &format!("serve.latency.{}.{}", ev.endpoint, ev.outcome),
                ev.service_us,
            );
            obs::hist(&format!("serve.queue_wait.{}", ev.endpoint), ev.queue_us);
            let error = matches!(ev.outcome, "error" | "rejected" | "deadline");
            let sec = self.started.elapsed().as_secs();
            self.windows.lock().expect("windows lock").bump(sec, error);
            if let Some(sink) = &self.sink {
                let n = self.log_seq.fetch_add(1, Ordering::Relaxed);
                if n.is_multiple_of(self.log_sample) {
                    let mut line = format!(
                        "{{\"id\":\"{}\",\"ts\":{},\"endpoint\":\"{}\",\"outcome\":\"{}\",\
                         \"queue_us\":{},\"service_us\":{}",
                        ev.id,
                        Telemetry::epoch_secs(),
                        ev.endpoint,
                        ev.outcome,
                        ev.queue_us,
                        ev.service_us
                    );
                    if let Some(key) = ev.cache_key {
                        use std::fmt::Write as _;
                        let _ = write!(
                            line,
                            ",\"program_hash\":\"{:016x}\",\"config_hash\":\"{:016x}\"",
                            key.program_hash, key.config_hash
                        );
                    }
                    use std::fmt::Write as _;
                    let _ = write!(line, ",\"threads\":{}}}", ev.threads);
                    let mut w = sink.lock().expect("access log lock");
                    let _ = writeln!(w, "{line}");
                    let _ = w.flush();
                }
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = ev;
        }
    }

    /// `(window_secs, rps, error_rate)` for the 1s/10s/60s windows.
    /// All zeros when the `telemetry` feature is off.
    #[must_use]
    pub fn window_rates(&self) -> [(u64, f64, f64); 3] {
        #[cfg(feature = "telemetry")]
        {
            let now = self.started.elapsed().as_secs();
            let windows = self.windows.lock().expect("windows lock");
            [1u64, 10, 60].map(|w| {
                let (rps, er) = windows.rate(now, w);
                (w, rps, er)
            })
        }
        #[cfg(not(feature = "telemetry"))]
        [(1, 0.0, 0.0), (10, 0.0, 0.0), (60, 0.0, 0.0)]
    }

    /// Serialize a slow request's trace next to the access log (or the
    /// working directory) as `slow-<id>.trace.json`; returns the path
    /// written. A no-op returning `None` when the feature is off.
    pub fn write_slow_trace(&self, id: &str, trace_json: &str) -> Option<PathBuf> {
        #[cfg(feature = "telemetry")]
        {
            let path = self.trace_dir.join(format!("slow-{id}.trace.json"));
            std::fs::write(&path, trace_json).ok()?;
            Some(path)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (id, trace_json);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub(cfg: &TelemetryConfig) -> Telemetry {
        Telemetry::new(cfg).expect("telemetry hub")
    }

    #[test]
    fn ids_are_monotonic_and_filename_safe() {
        let t = hub(&TelemetryConfig::default());
        let a = t.next_id();
        let b = t.next_id();
        assert_eq!(a, "r00000001");
        assert_eq!(b, "r00000002");
        assert!(a.chars().all(|c| c.is_ascii_alphanumeric()));
        assert_eq!(t.requests_total(), 2);
    }

    #[test]
    fn capture_policy_follows_slow_us() {
        let off = hub(&TelemetryConfig::default());
        assert!(!off.capture_enabled());
        assert!(!off.is_slow(u64::MAX));
        let on = hub(&TelemetryConfig {
            slow_us: Some(1000),
            ..TelemetryConfig::default()
        });
        #[cfg(feature = "telemetry")]
        {
            assert!(on.capture_enabled());
            assert!(on.is_slow(1000));
            assert!(!on.is_slow(999));
        }
        #[cfg(not(feature = "telemetry"))]
        assert!(!on.capture_enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn windows_roll_and_rate() {
        let mut w = Windows::new();
        for _ in 0..30 {
            w.bump(5, false);
        }
        w.bump(5, true);
        let (rps, er) = w.rate(5, 1);
        assert!((rps - 31.0).abs() < 1e-9);
        assert!((er - 1.0 / 31.0).abs() < 1e-9);
        // Ten seconds later the same counts average over the window…
        let (rps10, _) = w.rate(5, 10);
        assert!((rps10 - 3.1).abs() < 1e-9);
        // …and a slot re-stamped after the ring wraps drops the old data.
        w.bump(5 + WINDOW_SLOTS as u64, false);
        let (rps_new, _) = w.rate(5 + WINDOW_SLOTS as u64, 1);
        assert!((rps_new - 1.0).abs() < 1e-9);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn access_log_lines_are_jsonl_and_sampled() {
        let dir = std::env::temp_dir().join("nadroid_telemetry_log");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("access.jsonl");
        let t = hub(&TelemetryConfig {
            access_log: Some(log.to_string_lossy().into_owned()),
            slow_us: None,
            log_sample: 2,
        });
        for i in 0..4u64 {
            let id = t.next_id();
            t.observe(&RequestEvent {
                id: &id,
                endpoint: "analyze",
                outcome: if i == 3 { "error" } else { "miss" },
                queue_us: 10 + i,
                service_us: 100 + i,
                cache_key: Some(CacheKey {
                    program_hash: 0xdead_beef,
                    config_hash: 7,
                }),
                threads: 2,
            });
        }
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "sample=2 logs every other request:\n{text}");
        for line in &lines {
            let v = nadroid_core::parse_json(line).expect("access log line parses");
            assert!(v.get("id").is_some());
            // Wall-clock stamp, correlating the line with ledger
            // records and other processes' logs.
            let ts = v
                .get("ts")
                .and_then(nadroid_core::JsonValue::as_u64)
                .expect("ts field");
            assert!(ts > 1_500_000_000, "epoch seconds, not uptime: {ts}");
            assert_eq!(
                v.get("endpoint").and_then(nadroid_core::JsonValue::as_str),
                Some("analyze")
            );
            assert_eq!(
                v.get("program_hash")
                    .and_then(nadroid_core::JsonValue::as_str),
                Some("00000000deadbeef")
            );
        }
        // Histograms and windows saw all four requests, not just the
        // sampled two.
        let rates = t.window_rates();
        assert!((rates[0].1 - 4.0).abs() < 1e-9, "rps_1s counts all: {rates:?}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn slow_trace_lands_next_to_the_access_log() {
        let dir = std::env::temp_dir().join("nadroid_telemetry_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("access.jsonl");
        let t = hub(&TelemetryConfig {
            access_log: Some(log.to_string_lossy().into_owned()),
            slow_us: Some(0),
            log_sample: 1,
        });
        let path = t
            .write_slow_trace("r0000002a", "{\"traceEvents\": []}\n")
            .expect("trace written");
        assert_eq!(path.parent(), log.parent());
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("r0000002a"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(nadroid_core::parse_json(&body).is_ok());
    }
}
