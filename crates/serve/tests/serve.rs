//! End-to-end tests over a real TCP connection: cold/warm round trips,
//! structured deadline timeouts that leave the worker healthy, and
//! counter consistency between the `stats` op and the obs recorder.

use nadroid_serve::client::Client;
use nadroid_serve::protocol::{AnalyzeOpts, Request, Response};
use nadroid_serve::server::{ServeConfig, Server};

const CONNECTBOT: &str = include_str!("../../../apps/connectbot.dsl");

fn test_server(workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn stat(fields: &[(String, u64)], name: &str) -> u64 {
    fields
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("stats field `{name}` missing"))
        .1
}

#[test]
fn cold_then_warm_round_trip_with_identical_warnings() {
    let server = test_server(2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let cold = client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let Response::Analyze {
        app,
        cached,
        summary,
        warnings,
        ..
    } = cold
    else {
        panic!("expected analyze response, got {cold:?}");
    };
    assert_eq!(app, "ConnectBot");
    assert!(!cached, "first request must compute");
    assert!(summary.after_unsound >= 1, "ConnectBot plants real UAFs");
    assert!(!warnings.is_empty());
    assert!(warnings.iter().all(|w| w.starts_with("w:")));

    let warm = client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let Response::Analyze {
        cached: warm_cached,
        warnings: warm_warnings,
        ..
    } = warm
    else {
        panic!("expected analyze response");
    };
    assert!(warm_cached, "second identical request must hit the cache");
    assert_eq!(warnings, warm_warnings, "cache returns the same ids");

    // A different config is a different cache key.
    let k3 = client
        .analyze(
            CONNECTBOT,
            AnalyzeOpts {
                k: 3,
                ..AnalyzeOpts::default()
            },
        )
        .unwrap();
    let Response::Analyze { cached: k3_cached, .. } = k3 else {
        panic!("expected analyze response");
    };
    assert!(!k3_cached, "k=3 must not alias the k=2 entry");
}

#[test]
fn explain_is_served_from_cached_provenance() {
    let server = test_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let Response::Analyze { warnings, .. } =
        client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap()
    else {
        panic!("expected analyze response");
    };
    let id = warnings.first().expect("at least one warning").clone();

    let explained = client
        .explain(CONNECTBOT, Some(&id), AnalyzeOpts::default())
        .unwrap();
    let Response::Explain { cached, text, .. } = explained else {
        panic!("expected explain response, got {explained:?}");
    };
    assert!(cached, "explain after analyze reuses the cached provenance");
    assert!(text.contains(&id));
    assert!(text.contains("filter audit:"), "audit trail present");
    assert!(text.contains("(base fact)"), "derivation tree present");

    // Unknown id renders the same informative note the CLI prints.
    let missing = client
        .explain(CONNECTBOT, Some("w:ffffffffffffffff"), AnalyzeOpts::default())
        .unwrap();
    let Response::Explain { text, .. } = missing else {
        panic!("expected explain response, got {missing:?}");
    };
    assert!(text.contains("no warning with id"), "{text}");
    assert!(text.contains(&id), "known ids are listed");
}

#[test]
fn confirm_op_round_trips_caches_and_upgrades_provenance() {
    let server = test_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Prime the cache with a plain analysis: the later confirm must
    // upgrade this entry rather than duplicate it.
    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();

    let cold = client.confirm(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let Response::Confirm { cached, json, .. } = cold else {
        panic!("expected confirm response, got {cold:?}");
    };
    assert!(!cached, "first confirm must run the searches");
    assert!(json.contains("\"schema\": \"nadroid-confirm/1\""), "{json}");
    assert!(json.contains("\"verdict\": \"confirmed\""), "{json}");
    assert!(json.contains("\"schedule\": \""), "{json}");

    let warm = client.confirm(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let Response::Confirm {
        cached: warm_cached,
        json: warm_json,
        ..
    } = warm
    else {
        panic!("expected confirm response");
    };
    assert!(warm_cached, "second identical confirm must hit the cache");
    assert_eq!(json, warm_json, "cache returns the same document");

    // The upgraded entry now answers explain with verdicts attached.
    let explained = client
        .explain(CONNECTBOT, None, AnalyzeOpts::default())
        .unwrap();
    let Response::Explain { cached, text, .. } = explained else {
        panic!("expected explain response, got {explained:?}");
    };
    assert!(cached, "explain reuses the upgraded cache entry");
    assert!(text.contains("confirmation:"), "{text}");
    assert!(text.contains("witness schedule:"), "{text}");

    // One upgraded entry, not an analyze entry plus a confirm entry.
    let fields = server.stats_fields();
    assert_eq!(stat(&fields, "cache_entries"), 1);
    assert!(stat(&fields, "confirm.confirmed") >= 1);

    // A zero deadline times out structurally instead of caching a
    // partial document, and the worker stays healthy. (`sound_only`
    // changes the cache key, so this one is a genuine cold path.)
    let timed_out = client
        .confirm(
            CONNECTBOT,
            AnalyzeOpts {
                sound_only: true,
                deadline_ms: Some(0),
                ..AnalyzeOpts::default()
            },
        )
        .unwrap();
    assert!(
        matches!(timed_out, Response::DeadlineExceeded { deadline_ms: 0 }),
        "zero deadline must time out, got {timed_out:?}"
    );
    let after = client.confirm(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    assert!(matches!(after, Response::Confirm { cached: true, .. }));
}

#[test]
fn deadline_exceeded_is_structured_and_does_not_poison_the_worker() {
    // One worker: if the timed-out job broke it, the follow-up would
    // hang instead of answering.
    let server = test_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let timed_out = client
        .analyze(
            CONNECTBOT,
            AnalyzeOpts {
                deadline_ms: Some(0),
                ..AnalyzeOpts::default()
            },
        )
        .unwrap();
    assert!(
        matches!(timed_out, Response::DeadlineExceeded { deadline_ms: 0 }),
        "zero deadline must time out, got {timed_out:?}"
    );

    let after = client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    assert!(
        matches!(after, Response::Analyze { cached: false, .. }),
        "the same worker must still serve fresh work, got {after:?}"
    );

    let fields = server.stats_fields();
    assert_eq!(stat(&fields, "deadline_exceeded"), 1);
    assert_eq!(stat(&fields, "completed"), 1);
}

#[test]
fn stats_op_matches_recorder_counters() {
    let server = test_server(2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap(); // miss
    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap(); // hit
    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap(); // hit

    let Response::Stats { fields } = client.stats().unwrap() else {
        panic!("expected stats response");
    };
    assert_eq!(stat(&fields, "cache_hits"), 2);
    assert_eq!(stat(&fields, "cache_misses"), 1);
    assert_eq!(stat(&fields, "completed"), 3);
    // The stats request itself is the 4th.
    assert_eq!(stat(&fields, "requests"), 4);
    assert!(stat(&fields, "cache_bytes") > 0);
    assert_eq!(stat(&fields, "cache_entries"), 1);

    // The obs counters tell the same story as the cache's own ledger.
    let rec = server.recorder();
    assert_eq!(rec.counter_value("serve.cache.hits"), 2);
    assert_eq!(rec.counter_value("serve.cache.misses"), 1);
    assert_eq!(rec.counter_value("serve.completed"), 3);
    assert_eq!(
        rec.counter_value("serve.requests"),
        stat(&fields, "requests")
    );
}

#[test]
fn malformed_requests_get_structured_errors() {
    let server = test_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let bad_dsl = client.analyze("app {{{", AnalyzeOpts::default()).unwrap();
    let Response::Error { message } = bad_dsl else {
        panic!("expected error, got {bad_dsl:?}");
    };
    assert!(message.contains("parse error"), "{message}");

    // The connection survives a protocol-level error too.
    let bad_line = client
        .request(&Request::Analyze {
            program: String::new(),
            opts: AnalyzeOpts::default(),
        })
        .unwrap();
    assert!(matches!(bad_line, Response::Error { .. }));

    let still_alive = client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    assert!(matches!(still_alive, Response::Analyze { .. }));
}

#[test]
fn shutdown_is_acknowledged_and_stops_the_server() {
    let mut server = test_server(1);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(client.shutdown().unwrap(), Response::Shutdown));
    // run_until_shutdown returns promptly once the flag is set.
    let fields = server.run_until_shutdown();
    assert_eq!(stat(&fields, "requests"), 1);
}
