//! End-to-end telemetry tests over a real TCP connection: request-id
//! echo, the `metrics` exposition document, the JSONL access log, and
//! forced slow-request capture (`slow_us = 0`).

use nadroid_core::{parse_json, JsonValue};
use nadroid_serve::client::Client;
use nadroid_serve::protocol::{AnalyzeOpts, Response};
use nadroid_serve::server::{ServeConfig, Server};
use nadroid_serve::telemetry::TelemetryConfig;

const CONNECTBOT: &str = include_str!("../../../apps/connectbot.dsl");

fn test_server(telemetry: TelemetryConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        telemetry,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nadroid_{}_{}", name, std::process::id()));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn every_response_echoes_a_monotonic_request_id() {
    let server = test_server(TelemetryConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.last_request_id(), None, "no response yet");

    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let first = client.last_request_id().expect("id echoed").to_owned();
    assert!(first.starts_with('r'), "{first}");

    client.stats().unwrap();
    let second = client.last_request_id().expect("id echoed").to_owned();
    assert!(second > first, "ids are monotonic: {first} then {second}");

    client.metrics().unwrap();
    assert!(client.last_request_id().expect("id echoed") > second.as_str());
}

#[cfg(feature = "telemetry")]
#[test]
fn metrics_op_exposes_per_endpoint_histograms_and_windows() {
    let server = test_server(TelemetryConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap(); // miss
    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap(); // hit
    client
        .explain(CONNECTBOT, None, AnalyzeOpts::default())
        .unwrap(); // hit

    let Response::Metrics { json } = client.metrics().unwrap() else {
        panic!("expected metrics response");
    };
    let doc = parse_json(&json).expect("metrics document parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("nadroid-serve-metrics/1")
    );
    let ts = doc.get("ts").and_then(JsonValue::as_u64).expect("ts field");
    assert!(ts > 1_500_000_000, "ts is wall-clock epoch seconds: {ts}");
    assert_eq!(
        doc.get("requests_total").and_then(JsonValue::as_u64),
        Some(4),
        "3 analyses/explains + this metrics request"
    );
    let counters = doc.get("counters").expect("counters section");
    assert_eq!(counters.get("cache_hits").and_then(JsonValue::as_u64), Some(2));

    let windows = doc.get("windows").expect("windows section");
    for key in ["rps_1s", "rps_10s", "rps_60s", "error_rate_1s", "error_rate_60s"] {
        assert!(windows.get(key).is_some(), "window `{key}` missing: {json}");
    }
    // All four requests landed within the last minute.
    let rps_60 = windows.get("rps_60s").and_then(JsonValue::as_f64).unwrap();
    assert!(rps_60 > 0.0, "rps_60s must see the traffic: {rps_60}");

    let hists = doc.get("histograms").expect("histograms section");
    for name in [
        "serve.latency.analyze.miss",
        "serve.latency.analyze.hit",
        "serve.latency.explain.hit",
        "serve.queue_wait.analyze",
        "serve.phase.hb",
        "serve.phase.pointsto",
        "serve.phase.detect",
    ] {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("histogram `{name}` missing: {json}"));
        assert!(h.get("count").and_then(JsonValue::as_u64).unwrap() >= 1);
        for field in ["p50_us", "p90_us", "p95_us", "p99_us", "max_us", "buckets"] {
            assert!(h.get(field).is_some(), "`{name}` lacks `{field}`");
        }
    }
    // The miss histogram holds exactly the one cold analysis, so its
    // percentiles collapse onto that sample's bucket.
    let miss = hists.get("serve.latency.analyze.miss").unwrap();
    assert_eq!(miss.get("count").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        miss.get("p50_us").and_then(JsonValue::as_u64),
        miss.get("p99_us").and_then(JsonValue::as_u64)
    );
}

#[cfg(feature = "telemetry")]
#[test]
fn access_log_and_forced_slow_capture_produce_parseable_artifacts() {
    let dir = temp_dir("telemetry_e2e");
    let log = dir.join("access.jsonl");
    let server = test_server(TelemetryConfig {
        access_log: Some(log.to_string_lossy().into_owned()),
        slow_us: Some(0), // every computed request counts as slow
        log_sample: 1,
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    let slow_id = client.last_request_id().expect("id echoed").to_owned();
    client.analyze(CONNECTBOT, AnalyzeOpts::default()).unwrap();
    client.stats().unwrap();

    // Three JSONL lines, every one parseable, ids matching the echoes.
    let text = std::fs::read_to_string(&log).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one line per request:\n{text}");
    for line in &lines {
        let v = parse_json(line).expect("access log line parses");
        for key in ["id", "endpoint", "outcome", "queue_us", "service_us", "threads"] {
            assert!(v.get(key).is_some(), "access line lacks `{key}`: {line}");
        }
    }
    let outcomes: Vec<String> = lines
        .iter()
        .map(|l| {
            parse_json(l)
                .unwrap()
                .get("outcome")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_owned()
        })
        .collect();
    assert_eq!(outcomes, ["miss", "hit", "ok"], "{text}");

    // slow_us = 0 forces capture: the cold request's span tree landed
    // next to the access log and is valid trace JSON.
    let trace = dir.join(format!("slow-{slow_id}.trace.json"));
    let body = std::fs::read_to_string(&trace)
        .unwrap_or_else(|e| panic!("slow trace {} missing: {e}", trace.display()));
    let doc = parse_json(&body).expect("slow trace parses");
    assert!(doc.get("traceEvents").is_some(), "{body}");
    assert!(body.contains("serve.analyze"), "span tree captured: {body}");

    // Capture isolates spans per request, but the shared recorder still
    // aggregates the metrics (merge_from folds them back).
    assert!(server.recorder().counter_value("serve.cache.misses") >= 1);
    assert!(server
        .recorder()
        .histogram("serve.latency.analyze.miss")
        .is_some());
}
