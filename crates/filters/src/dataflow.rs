//! Intra-procedural must-allocation dataflow for the IA and MA filters.
//!
//! The intra-allocation (IA) filter prunes a UAF warning when the use's
//! callback *must* have assigned a fresh allocation to the field before
//! the use, with no intervening free (§6.1.3). The unsound
//! maybe-allocation (MA) filter additionally treats values returned by
//! custom getter methods as allocations, assuming getters never return
//! null (§6.2.2).

use nadroid_ir::{Block, Callee, FieldId, InstrId, Local, MethodId, Op, Program, Stmt};
use nadroid_pointsto::PointsTo;
use std::collections::HashSet;

/// The must-state of the tracked field at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Unknown,
    Alloc,
    Freed,
}

impl St {
    fn merge(self, other: St) -> St {
        if self == other {
            self
        } else {
            St::Unknown
        }
    }
}

#[derive(Debug, Clone)]
struct Flow {
    /// Locals definitely holding a fresh allocation (or non-null getter
    /// result in MA mode).
    fresh: HashSet<Local>,
    state: St,
}

impl Flow {
    fn merge(mut self, other: &Flow) -> Flow {
        self.fresh.retain(|l| other.fresh.contains(l));
        self.state = self.state.merge(other.state);
        self
    }
}

/// Configuration distinguishing IA (sound) from MA (unsound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSources {
    /// Treat results of custom getter calls as allocations (MA).
    pub getters: bool,
}

/// Whether the field access at `use_instr` (reading `base.field` inside
/// `method`) is dominated by a must-allocation of that field with no
/// intervening free.
///
/// Base locals are matched exactly or by equal non-empty points-to sets
/// (so `outer.f` patterns, which load the base into a fresh temp each
/// time, still match).
#[must_use]
pub fn must_alloc_before(
    program: &Program,
    pts: &PointsTo,
    method: MethodId,
    use_instr: InstrId,
    base: Local,
    field: FieldId,
    sources: AllocSources,
) -> bool {
    let mut walker = Walker {
        program,
        pts,
        method,
        use_instr,
        base,
        field,
        sources,
        verdict: None,
    };
    let mut flow = Flow {
        fresh: HashSet::new(),
        state: St::Unknown,
    };
    walker.block(program.method(method).body(), &mut flow);
    walker.verdict.unwrap_or(false)
}

struct Walker<'p> {
    program: &'p Program,
    pts: &'p PointsTo,
    method: MethodId,
    use_instr: InstrId,
    base: Local,
    field: FieldId,
    sources: AllocSources,
    verdict: Option<bool>,
}

impl Walker<'_> {
    fn same_base(&self, other: Local) -> bool {
        if other == self.base {
            return true;
        }
        let a = self.pts.pts(self.method, self.base);
        let b = self.pts.pts(self.method, other);
        !a.is_empty() && a == b
    }

    fn block(&mut self, block: &Block, flow: &mut Flow) {
        for stmt in block {
            if self.verdict.is_some() {
                return;
            }
            match stmt {
                Stmt::Instr(i) => self.instr(i.id, &i.op, flow),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    let mut t = flow.clone();
                    let mut e = flow.clone();
                    self.block(then_blk, &mut t);
                    if self.verdict.is_some() {
                        return;
                    }
                    self.block(else_blk, &mut e);
                    if self.verdict.is_some() {
                        return;
                    }
                    *flow = t.merge(&e);
                }
                Stmt::Loop { body } => {
                    let mut b = flow.clone();
                    self.block(body, &mut b);
                    if self.verdict.is_some() {
                        return;
                    }
                    // The loop may run zero times.
                    *flow = b.merge(flow);
                }
                Stmt::Sync { body, .. } => self.block(body, flow),
            }
        }
    }

    fn instr(&mut self, id: InstrId, op: &Op, flow: &mut Flow) {
        if id == self.use_instr {
            self.verdict = Some(flow.state == St::Alloc);
            return;
        }
        match op {
            Op::New { dst, .. } => {
                flow.fresh.insert(*dst);
            }
            Op::Move { dst, src } => {
                if flow.fresh.contains(src) {
                    flow.fresh.insert(*dst);
                } else {
                    flow.fresh.remove(dst);
                }
            }
            Op::Store { base, field, src } => {
                if *field == self.field && self.same_base(*base) {
                    flow.state = if flow.fresh.contains(src) {
                        St::Alloc
                    } else {
                        St::Unknown
                    };
                }
                flow.fresh.remove(base); // storing into it doesn't unfresh, but be safe
            }
            Op::StoreNull { base, field } if *field == self.field && self.same_base(*base) => {
                flow.state = St::Freed;
            }
            Op::Load { dst, .. } => {
                flow.fresh.remove(dst);
            }
            Op::Null { dst } => {
                flow.fresh.remove(dst);
            }
            Op::LoadStatic { dst, .. } => {
                flow.fresh.remove(dst);
            }
            Op::Invoke { dst, callee, .. } => {
                if let Some(d) = dst {
                    let getter_result = self.sources.getters
                        && matches!(callee, Callee::Method(m)
                            if self.program.method(*m).getter_of().is_some());
                    if getter_result {
                        flow.fresh.insert(*d);
                    } else {
                        flow.fresh.remove(d);
                    }
                }
                // A call into analyzed code that may free the tracked
                // field clobbers the must-state.
                if let Callee::Method(m) = callee {
                    if may_free_field(self.program, *m, self.field) {
                        flow.state = St::Unknown;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Whether `method` (or a plain method it transitively calls) contains a
/// free of `field`.
fn may_free_field(program: &Program, method: MethodId, field: FieldId) -> bool {
    let methods = nadroid_threadify::own_methods(program, method);
    methods.iter().any(|&m| {
        let mut found = false;
        program.method(m).body().for_each_instr(&mut |i| {
            if let Op::StoreNull { field: f, .. } = i.op {
                if f == field {
                    found = true;
                }
            }
        });
        found
    })
}

/// May-analysis used by the RHB filter: whether any path through
/// `method` (or a plain helper it calls) stores a fresh allocation into
/// `field`.
#[must_use]
pub fn may_alloc_field(program: &Program, method: MethodId, field: FieldId) -> bool {
    let methods = nadroid_threadify::own_methods(program, method);
    methods.iter().any(|&m| {
        let mut fresh: HashSet<Local> = HashSet::new();
        let mut found = false;
        program
            .method(m)
            .body()
            .for_each_instr(&mut |i| match &i.op {
                Op::New { dst, .. } => {
                    fresh.insert(*dst);
                }
                Op::Move { dst, src } if fresh.contains(src) => {
                    fresh.insert(*dst);
                }
                Op::Store { field: f, src, .. } if *f == field && fresh.contains(src) => {
                    found = true;
                }
                _ => {}
            });
        found
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;

    const NO_GETTERS: AllocSources = AllocSources { getters: false };
    const WITH_GETTERS: AllocSources = AllocSources { getters: true };

    /// Find the first Load of the named field in the named method.
    fn find_use(p: &Program, class: &str, method: &str) -> (MethodId, InstrId, Local, FieldId) {
        let c = p.class_by_name(class).unwrap();
        let m = p.method_by_name(c, method).unwrap();
        let mut found = None;
        p.method(m).body().for_each_instr(&mut |i| {
            if found.is_none() {
                if let Op::Load { base, field, .. } = i.op {
                    if p.field(field).name() != nadroid_ir::OUTER_FIELD {
                        found = Some((i.id, base, field));
                    }
                }
            }
        });
        let (id, base, field) = found.expect("no load found");
        (m, id, base, field)
    }

    fn pts_of(p: &Program) -> PointsTo {
        let t = nadroid_threadify::ThreadModel::build(p);
        PointsTo::run(p, &t, 2)
    }

    #[test]
    fn straight_line_alloc_dominates() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onClick { f = new M  use f }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn alloc_on_one_branch_only_is_not_must() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onClick {
                    if ? { f = new M } else { }
                    use f
                }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(!must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn alloc_on_both_branches_is_must() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onClick {
                    if ? { f = new M } else { f = new M }
                    use f
                }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn intervening_free_kills_alloc() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onClick { f = new M  f = null  use f }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(!must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn loop_may_skip_alloc() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onClick {
                    loop { f = new M }
                    use f
                }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(!must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn getter_counts_only_in_ma_mode() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                field src: M
                fn getF { useret src }
                cb onClick { f = call getF  use f }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        // The first load in onClick is the getter's `useret src`? No — the
        // getter body belongs to getF. In onClick the first load is `use f`.
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert_eq!(p.field(field).name(), "f");
        assert!(!must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
        assert!(must_alloc_before(
            &p,
            &pts,
            m,
            id,
            base,
            field,
            WITH_GETTERS
        ));
    }

    #[test]
    fn callee_that_frees_clobbers() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                fn clear { f = null }
                cb onClick { f = new M  call clear  use f }
            }
            "#,
        )
        .unwrap();
        let pts = pts_of(&p);
        let (m, id, base, field) = find_use(&p, "M", "onClick");
        assert!(!must_alloc_before(&p, &pts, m, id, base, field, NO_GETTERS));
    }

    #[test]
    fn may_alloc_detects_any_path() {
        let p = parse_program(
            r#"
            app A
            activity M {
                field f: M
                cb onResume { if ? { f = new M } else { } }
            }
            "#,
        )
        .unwrap();
        let c = p.class_by_name("M").unwrap();
        let m = p.method_by_name(c, "onResume").unwrap();
        let f = p.field_by_name(c, "f").unwrap();
        assert!(may_alloc_field(&p, m, f));
    }
}
