//! The no-sleep energy-bug client (§9).
//!
//! The paper notes that nAdroid's machinery "can be applied to other
//! concurrency bugs such as no-sleep bugs [Pathak et al.] and energy
//! bugs where racy API calls lead to ordering violations". This module
//! is that client: a wake-lock `acquire` is safe only when a `release`
//! of the same lock is *ordered after* it — later in the same callback,
//! or in a callback the sound must-happens-before relation places
//! strictly after. An acquire with no ordered release can leave the
//! device awake after the app is backgrounded.

use crate::Filters;
use nadroid_ir::{AndroidOp, InstrId, Local, MethodId, Op, Program};
use nadroid_pointsto::PointsTo;
use nadroid_threadify::{ThreadId, ThreadModel};

/// A wake-lock API site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSite {
    /// The acquire/release instruction.
    pub instr: InstrId,
    /// Its method.
    pub method: MethodId,
    /// The lock operand.
    pub lock: Local,
    /// Threads executing the site.
    pub threads: Vec<ThreadId>,
}

/// A no-sleep warning: an acquire with no release ordered after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoSleepWarning {
    /// The unbalanced acquire.
    pub acquire: WakeSite,
    /// Releases of the same lock that exist but are *unordered* with the
    /// acquire (racy API calls, as §9 phrases it). Empty means no release
    /// exists at all.
    pub unordered_releases: Vec<WakeSite>,
}

/// Detect no-sleep bugs: for every acquire, look for a release of an
/// aliased lock that is ordered after it — syntactically later in the
/// same method (callbacks run to completion), or in a thread the sound
/// MHB relation places strictly after the acquiring one.
#[must_use]
pub fn detect_no_sleep(
    program: &Program,
    threads: &ThreadModel,
    pts: &PointsTo,
    filters: &Filters<'_>,
) -> Vec<NoSleepWarning> {
    let (acquires, releases) = collect_sites(program, threads);
    let mut out = Vec::new();
    for a in &acquires {
        let aliased: Vec<&WakeSite> = releases
            .iter()
            .filter(|r| pts.may_alias((a.method, a.lock), (r.method, r.lock)))
            .collect();
        let ordered = aliased.iter().any(|r| {
            // Same method, later in program order: callbacks and thread
            // bodies run to completion, so the release always follows.
            if r.method == a.method && r.instr > a.instr {
                return true;
            }
            // A release in a callback the acquire's callback must precede.
            a.threads.iter().any(|&ta| {
                r.threads
                    .iter()
                    .any(|&tr| filters.must_happen_before(ta, tr))
            })
        });
        if !ordered {
            out.push(NoSleepWarning {
                acquire: a.clone(),
                unordered_releases: aliased.into_iter().cloned().collect(),
            });
        }
    }
    out
}

fn collect_sites(program: &Program, threads: &ThreadModel) -> (Vec<WakeSite>, Vec<WakeSite>) {
    let mut acquires = Vec::new();
    let mut releases = Vec::new();
    for (mid, i) in program.instrs() {
        let (lock, is_acquire) = match i.op {
            Op::Android(AndroidOp::AcquireWakeLock { lock }) => (lock, true),
            Op::Android(AndroidOp::ReleaseWakeLock { lock }) => (lock, false),
            _ => continue,
        };
        let site = WakeSite {
            instr: i.id,
            method: mid,
            lock,
            threads: threads.threads_of_method(mid).to_vec(),
        };
        if is_acquire {
            acquires.push(site);
        } else {
            releases.push(site);
        }
    }
    (acquires, releases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadroid_ir::parse_program;
    use nadroid_pointsto::Escape;

    fn run(src: &str) -> Vec<NoSleepWarning> {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
        let t = ThreadModel::build(&p);
        let pts = PointsTo::run(&p, &t, 2);
        let esc = Escape::compute(&p, &t, &pts);
        let f = Filters::new(&p, &t, &pts, &esc);
        detect_no_sleep(&p, &t, &pts, &f)
    }

    #[test]
    fn balanced_same_callback_is_safe() {
        let w = run(r#"
            app Ns
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onClick {
                    t1 = load this M.wl
                    acquire t1
                    release t1
                }
            }
            class Wl { }
            "#);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn acquire_without_any_release_is_reported() {
        let w = run(r#"
            app Ns
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onClick { t1 = load this M.wl  acquire t1 }
            }
            class Wl { }
            "#);
        assert_eq!(w.len(), 1);
        assert!(w[0].unordered_releases.is_empty());
    }

    #[test]
    fn unordered_release_is_reported_as_racy() {
        // The classic no-sleep race: acquire in onResume, release in
        // onPause — but the acquire may also run *after* the release
        // (pause then resume), leaving the lock held in background.
        let w = run(r#"
            app Ns
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onResume { t1 = load this M.wl  acquire t1 }
                cb onPause { t1 = load this M.wl  release t1 }
            }
            class Wl { }
            "#);
        assert_eq!(w.len(), 1);
        assert_eq!(
            w[0].unordered_releases.len(),
            1,
            "the racy release is reported"
        );
    }

    #[test]
    fn mhb_ordered_release_is_safe() {
        // Release in onDestroy: every callback must precede it, so the
        // acquire is always balanced before the process ends.
        let w = run(r#"
            app Ns
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onResume { t1 = load this M.wl  acquire t1 }
                cb onDestroy { t1 = load this M.wl  release t1 }
            }
            class Wl { }
            "#);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn asynctask_protocol_orders_release() {
        // Acquire in onPreExecute, release in onPostExecute: the task
        // protocol orders them soundly.
        let w = run(r#"
            app Ns
            activity M {
                field wl: Wl
                cb onCreate { wl = new Wl }
                cb onClick { execute T }
            }
            asynctask T in M {
                cb onPreExecute {
                    t1 = load this T.$outer
                    t2 = load t1 M.wl
                    acquire t2
                }
                cb doInBackground { }
                cb onPostExecute {
                    t1 = load this T.$outer
                    t2 = load t1 M.wl
                    release t2
                }
            }
            class Wl { }
            "#);
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn different_locks_do_not_balance() {
        let w = run(r#"
            app Ns
            activity M {
                field a: Wl
                field b: Wl
                cb onCreate { a = new Wl  b = new Wl }
                cb onClick {
                    t1 = load this M.a
                    acquire t1
                    t2 = load this M.b
                    release t2
                }
            }
            class Wl { }
            "#);
        assert_eq!(w.len(), 1, "releasing an unrelated lock does not help");
    }
}
