//! The sound reachability-refutation filter.
//!
//! Runs *after* the §6 pipeline, over surviving warnings only. A warning
//! is refuted when every callback-sequence witness it could have is
//! contradicted by the predicate-extended happens-before knowledge:
//!
//! 1. **Extended order** — `predHb(use, free)` holds: the fragment
//!    automaton or the task-stack model orders the use callback strictly
//!    before the free callback in every execution, exactly like the MHB
//!    filter but over the predicate-extended closure.
//! 2. **Family disabled** — `mustNotHb(free, use)` holds: the use's
//!    callback family is provably disabled (and never re-armable) by the
//!    time the freeing callback has completed, so no witness can deliver
//!    the use after the free. Requires the two endpoints to serialize on
//!    one looper, so "never delivered after" implies "never executes
//!    after".
//! 3. **Unreachable callback** — `unreachable(use)` holds: the use's
//!    callback can never be delivered at all (its family is disabled on
//!    every path that could reach it), so there is no witness, period.
//!
//! All three rest only on *sound* facts (automaton dominators, once-only
//! enablers, unconditional disabler sites), so unlike the §6.2 filters a
//! refutation never discards a feasible UAF. Each refutation carries the
//! full contradiction chain, which the provenance sidecar records under
//! the `nadroid-provenance/4` schema and `nadroid explain` renders.

use nadroid_hb::{HbGraph, MustNotProv, PredEdgeKind};
use nadroid_detector::UafWarning;
use nadroid_ir::Program;
use nadroid_threadify::{ThreadId, ThreadModel};

/// Which contradiction refuted the warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RefutationReason {
    /// `predHb(use, free)`: the predicate-extended closure orders the
    /// use strictly before the free.
    ExtendedOrder,
    /// `mustNotHb(free, use)`: the use's callback family is disabled
    /// before the free can run and can never be re-armed.
    Disabled,
    /// `unreachable(use)`: the use's callback is never delivered at all.
    Unreachable,
}

impl RefutationReason {
    /// Every reason, in the order `refute` tries them.
    pub const ALL: [RefutationReason; 3] = [
        RefutationReason::Unreachable,
        RefutationReason::ExtendedOrder,
        RefutationReason::Disabled,
    ];

    /// Short machine-readable name, used in provenance records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RefutationReason::ExtendedOrder => "extended-order",
            RefutationReason::Disabled => "disabled",
            RefutationReason::Unreachable => "unreachable",
        }
    }

    /// Parse a wire name back; `None` for anything else.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "extended-order" => Some(RefutationReason::ExtendedOrder),
            "disabled" => Some(RefutationReason::Disabled),
            "unreachable" => Some(RefutationReason::Unreachable),
            _ => None,
        }
    }
}

/// A successful refutation: the reason plus the ordered contradiction
/// chain (each step one human-readable fact, ending in the
/// contradiction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refutation {
    /// Which contradiction applied.
    pub reason: RefutationReason,
    /// The ordered evidence steps.
    pub chain: Vec<String>,
}

/// The refutation engine, bound to one analyzed program.
#[derive(Debug)]
pub struct Refuter<'a> {
    program: &'a Program,
    threads: &'a ThreadModel,
    hb: &'a HbGraph,
}

impl<'a> Refuter<'a> {
    /// Bind to the program, its thread model, and the materialized HB
    /// graph (which already holds the solved predicate relations).
    #[must_use]
    pub fn new(program: &'a Program, threads: &'a ThreadModel, hb: &'a HbGraph) -> Self {
        Refuter {
            program,
            threads,
            hb,
        }
    }

    /// Attempt to refute a surviving warning. `None` means no sound
    /// contradiction was found and the warning stands.
    #[must_use]
    pub fn refute(&self, w: &UafWarning) -> Option<Refutation> {
        self.unreachable(w)
            .or_else(|| self.extended_order(w))
            .or_else(|| self.disabled(w))
    }

    fn lineage(&self, t: ThreadId) -> String {
        self.threads.lineage_string(self.program, t)
    }

    /// Reason 3: the use's callback is never delivered at all.
    fn unreachable(&self, w: &UafWarning) -> Option<Refutation> {
        if !self.hb.unreachable_cb(w.use_thread) {
            return None;
        }
        let mut chain = vec![format!(
            "any witness must deliver [{}] at least once",
            self.lineage(w.use_thread)
        )];
        if let Some(prov) = self.hb.unreachable_prov(w.use_thread) {
            chain.extend(self.must_not_steps(prov, w.use_thread));
        }
        chain.push(format!(
            "but the predicate-extended order also requires [{}] to run strictly after \
             the callback that disables it on every path — the callback is never \
             delivered at all; no witness exists",
            self.lineage(w.use_thread)
        ));
        Some(Refutation {
            reason: RefutationReason::Unreachable,
            chain,
        })
    }

    /// Reason 1: the predicate-extended closure orders use before free.
    fn extended_order(&self, w: &UafWarning) -> Option<Refutation> {
        if !self.hb.pred_must_hb(w.use_thread, w.free_thread) {
            return None;
        }
        let mut chain = vec![format!(
            "any witness must run [{}]'s use after [{}]'s free",
            self.lineage(w.use_thread),
            self.lineage(w.free_thread)
        )];
        if let Some(path) = self.hb.pred_must_hb_path(w.use_thread, w.free_thread) {
            for pair in path.windows(2) {
                chain.push(self.hop_step(pair[0], pair[1]));
            }
        }
        chain.push(
            "so the use completes strictly before the free in every execution — \
             no witness exists"
                .into(),
        );
        Some(Refutation {
            reason: RefutationReason::ExtendedOrder,
            chain,
        })
    }

    /// One hop of an extended-order witness path, labeled by its edge.
    fn hop_step(&self, a: ThreadId, b: ThreadId) -> String {
        let la = self.lineage(a);
        let lb = self.lineage(b);
        if let Some(kind) = self.hb.mhb_edge(a, b) {
            return format!("[{la}] precedes [{lb}] ({} edge)", kind.relation());
        }
        for e in self.hb.pred_edges() {
            if e.src == a && e.dst == b {
                return match e.kind {
                    PredEdgeKind::Fragment => format!(
                        "[{la}] precedes [{lb}] (fragment automaton: onAttach first, \
                         onDetach last)"
                    ),
                    PredEdgeKind::TaskStack { .. } => format!(
                        "[{la}] precedes [{lb}] (task stack: the unique startActivity \
                         launch completes before the target's onCreate)"
                    ),
                };
            }
        }
        format!("[{la}] precedes [{lb}]")
    }

    /// Reason 2: the family is disabled before the free can run.
    fn disabled(&self, w: &UafWarning) -> Option<Refutation> {
        let prov = self.hb.must_not_prov(w.free_thread, w.use_thread)?;
        // "never delivered after" implies "never executes after" only when
        // the endpoints serialize on one looper.
        if !self.threads.atomic_pair(w.use_thread, w.free_thread) {
            return None;
        }
        let mut chain = vec![format!(
            "any witness must deliver [{}] after [{}] has completed",
            self.lineage(w.use_thread),
            self.lineage(w.free_thread)
        )];
        chain.extend(self.must_not_steps(prov, w.use_thread));
        chain.push(format!(
            "both callbacks serialize on one looper, so [{}] can never run its use \
             after [{}]'s free — no witness exists",
            self.lineage(w.use_thread),
            self.lineage(w.free_thread)
        ));
        Some(Refutation {
            reason: RefutationReason::Disabled,
            chain,
        })
    }

    /// The shared middle of a `mustNotHb` contradiction chain.
    fn must_not_steps(&self, prov: &MustNotProv, gated: ThreadId) -> Vec<String> {
        match prov {
            MustNotProv::Disabled {
                family,
                enablers,
                disabler,
                disable_site,
            } => {
                let enabler_list = enablers
                    .iter()
                    .map(|&e| format!("[{}]", self.lineage(e)))
                    .collect::<Vec<_>>()
                    .join(", ");
                vec![
                    format!(
                        "[{}] is gated by the {} family: it is only deliverable while \
                         {} has armed it",
                        self.lineage(gated),
                        family.name(),
                        family.enabler_api(),
                    ),
                    format!(
                        "every {} enabler sits in a once-only onCreate: {enabler_list}",
                        family.name()
                    ),
                    format!(
                        "an unconditional {} in [{}] (instr {}) executes before the \
                         free on every automaton path (lifecycle dominator), and the \
                         once-only enabler can never re-arm the family afterwards",
                        family.disabler_api().unwrap_or("disabler"),
                        self.lineage(*disabler),
                        disable_site.raw(),
                    ),
                ]
            }
            MustNotProv::FragmentTerminal { detach } => vec![format!(
                "[{}] is terminal in the fragment automaton: no callback of the \
                 fragment instance is delivered after onDetach",
                self.lineage(*detach)
            )],
        }
    }
}
