//! Filter tests: each Figure 4 example must be pruned by exactly the
//! filter the paper names, and the Figure 1 harmful cases must survive.

use super::*;
use nadroid_detector::{detect, DetectorOptions, UafWarning};
use nadroid_ir::parse_program;
use nadroid_pointsto::{Escape, PointsTo};
use nadroid_threadify::ThreadModel;

struct Setup {
    program: Program,
    threads: ThreadModel,
    pts: PointsTo,
    escape: Escape,
    warnings: Vec<UafWarning>,
}

fn setup(src: &str) -> Setup {
    let program = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
    let threads = ThreadModel::build(&program);
    let pts = PointsTo::run(&program, &threads, 2);
    let escape = Escape::compute(&program, &threads, &pts);
    let warnings = detect(
        &program,
        &threads,
        &pts,
        &escape,
        DetectorOptions::default(),
    );
    Setup {
        program,
        threads,
        pts,
        escape,
        warnings,
    }
}

impl Setup {
    fn filters(&self) -> Filters<'_> {
        Filters::new(&self.program, &self.threads, &self.pts, &self.escape)
    }

    /// Find the warning whose use is in `use_m` and free in `free_m`.
    fn warning(&self, use_m: &str, free_m: &str) -> &UafWarning {
        self.warnings
            .iter()
            .find(|w| {
                self.program.method(w.use_access.method).name() == use_m
                    && self.program.method(w.free_access.method).name() == free_m
            })
            .unwrap_or_else(|| {
                panic!(
                    "no warning use={use_m} free={free_m}; have: {:?}",
                    self.warnings
                        .iter()
                        .map(|w| (
                            self.program.method(w.use_access.method).name(),
                            self.program.method(w.free_access.method).name()
                        ))
                        .collect::<Vec<_>>()
                )
            })
    }
}

// --- Figure 4 (a): MHB-Service --------------------------------------------

const FIG4A: &str = r#"
    app Fig4a
    activity M {
        field f: M
        field src: M
        cb onCreate { bind this }
        fn getF { useret src }
        cb onServiceConnected { f = call getF  use f }
        cb onServiceDisconnected { f = null }
    }
"#;

#[test]
fn fig4a_pruned_by_mhb() {
    let s = setup(FIG4A);
    let w = s.warning("onServiceConnected", "onServiceDisconnected");
    let f = s.filters();
    assert!(
        f.prunes(FilterKind::Mhb, w),
        "MHB-Service prunes connected-before-disconnected"
    );
    // The MA filter also covers it (getter assumed non-null) — the paper
    // notes fine-grained filters overlap coarse ones.
    assert!(f.prunes(FilterKind::Ma, w));
    assert!(
        !f.prunes(FilterKind::Ia, w),
        "IA is sound: getters are not allocations"
    );
}

// --- Figure 4 (b): IG -------------------------------------------------------

const FIG4B: &str = r#"
    app Fig4b
    activity M {
        field f: M
        cb onClick { if f != null { use f } }
        cb onLongClick { f = null }
    }
"#;

#[test]
fn fig4b_pruned_by_ig() {
    let s = setup(FIG4B);
    let w = s.warning("onClick", "onLongClick");
    let f = s.filters();
    assert!(f.prunes(FilterKind::Ig, w), "guard + callback atomicity");
    assert!(!f.prunes(FilterKind::Mhb, w));
    assert!(!f.prunes(FilterKind::Ia, w));
    let outcome = &f.pipeline(vec![w.clone()], FilterKind::all())[0];
    assert_eq!(outcome.pruned_by, Some(FilterKind::Ig));
}

// --- Figure 4 (c): IA -------------------------------------------------------

const FIG4C: &str = r#"
    app Fig4c
    activity M {
        field f: M
        cb onClick { f = new M  use f }
        cb onLongClick { f = null }
    }
"#;

#[test]
fn fig4c_pruned_by_ia() {
    let s = setup(FIG4C);
    let w = s.warning("onClick", "onLongClick");
    let f = s.filters();
    assert!(f.prunes(FilterKind::Ia, w));
    assert!(!f.prunes(FilterKind::Ig, w));
    assert!(!f.prunes(FilterKind::Mhb, w));
}

// --- Figure 4 (d): RHB ------------------------------------------------------

const FIG4D: &str = r#"
    app Fig4d
    activity M {
        field f: M
        cb onResume { f = new M }
        cb onPause { f = null }
        cb onClick { use f }
    }
"#;

#[test]
fn fig4d_pruned_by_rhb() {
    let s = setup(FIG4D);
    let w = s.warning("onClick", "onPause");
    let f = s.filters();
    assert!(
        f.prunes(FilterKind::Rhb, w),
        "onResume re-allocates before UI use"
    );
    assert!(
        !f.prunes(FilterKind::Mhb, w),
        "no sound order between onPause and onClick"
    );
    assert!(!f.prunes(FilterKind::Ia, w));
}

#[test]
fn fig4d_without_resume_alloc_survives_rhb() {
    let s = setup(
        r#"
        app Fig4dHarm
        activity M {
            field f: M
            cb onResume { }
            cb onPause { f = null }
            cb onClick { use f }
        }
        "#,
    );
    let w = s.warning("onClick", "onPause");
    assert!(
        !s.filters().prunes(FilterKind::Rhb, w),
        "no allocation in onResume: keep"
    );
}

// --- Figure 4 (e): CHB ------------------------------------------------------

const FIG4E: &str = r#"
    app Fig4e
    activity M {
        field f: M
        cb onClick { finish  f = null }
        cb onLongClick { use f }
    }
"#;

#[test]
fn fig4e_pruned_by_chb() {
    let s = setup(FIG4E);
    let w = s.warning("onLongClick", "onClick");
    let f = s.filters();
    assert!(
        f.prunes(FilterKind::Chb, w),
        "finish() cancels future UI callbacks"
    );
    assert!(!f.prunes(FilterKind::Mhb, w));
    assert!(!f.prunes(FilterKind::Phb, w));
}

#[test]
fn chb_unbind_covers_connection_callbacks_only() {
    let s = setup(
        r#"
        app ChbUnbind
        activity M {
            field f: M
            cb onCreate { bind Conn }
            cb onClick { unbind this  f = null }
            cb onLongClick { use f }
        }
        connection Conn in M {
            cb onServiceConnected { use outer.f }
            cb onServiceDisconnected { }
        }
        "#,
    );
    let f = s.filters();
    // unbind `this` resolves to class M, not Conn, so neither pair is
    // covered by CHB through the unbind.
    let w1 = s.warning("onLongClick", "onClick");
    assert!(
        !f.prunes(FilterKind::Chb, w1),
        "unbind does not silence UI callbacks"
    );
    let w2 = s.warning("onServiceConnected", "onClick");
    assert!(
        !f.prunes(FilterKind::Chb, w2),
        "operand class M != connection class Conn"
    );
}

#[test]
fn chb_unbind_of_connection_class_prunes() {
    let s = setup(
        r#"
        app ChbUnbind2
        activity M {
            field f: M
            field conn: Conn
            cb onCreate { conn = new Conn  t2 = load this M.conn  bindservice t2 }
            cb onClick { t2 = load this M.conn  unbindservice t2  f = null }
        }
        connection Conn in M {
            cb onServiceConnected { use outer.f }
            cb onServiceDisconnected { }
        }
        "#,
    );
    let f = s.filters();
    let w = s.warning("onServiceConnected", "onClick");
    assert!(
        f.prunes(FilterKind::Chb, w),
        "unbindService(conn) silences Conn's callbacks"
    );
}

// --- Figure 4 (f): PHB ------------------------------------------------------

const FIG4F: &str = r#"
    app Fig4f
    activity M {
        field f: M
        cb onClick { send H  use f }
    }
    handler H in M {
        cb handleMessage { outer.f = null }
    }
"#;

#[test]
fn fig4f_pruned_by_phb() {
    let s = setup(FIG4F);
    let w = s.warning("onClick", "handleMessage");
    let f = s.filters();
    assert!(
        f.prunes(FilterKind::Phb, w),
        "poster's use precedes postee's free"
    );
    assert!(!f.prunes(FilterKind::Mhb, w));
    assert!(!f.prunes(FilterKind::Chb, w));
}

#[test]
fn phb_does_not_prune_reverse_direction() {
    // Free in the poster, use in the postee: free-then-use is exactly the
    // feasible UAF; PHB must keep it.
    let s = setup(
        r#"
        app PhbRev
        activity M {
            field f: M
            cb onClick { send H }
            cb onLongClick { f = null }
        }
        handler H in M {
            cb handleMessage { use outer.f }
        }
        "#,
    );
    let w = s.warning("handleMessage", "onLongClick");
    assert!(!s.filters().prunes(FilterKind::Phb, w));
}

// --- Figure 4 (g): UR -------------------------------------------------------

const FIG4G: &str = r#"
    app Fig4g
    activity M {
        field f: M
        fn getF { useret f }
        cb onClick { t1 = call M.getF(recv=this) }
        cb onLongClick { f = null }
    }
"#;

#[test]
fn fig4g_pruned_by_ur() {
    let s = setup(FIG4G);
    let w = s.warning("getF", "onLongClick");
    let f = s.filters();
    assert!(f.prunes(FilterKind::Ur, w), "return-only uses are benign");
    assert!(!f.prunes(FilterKind::Ig, w));
}

#[test]
fn ur_keeps_dereferencing_uses() {
    let s = setup(FIG4C);
    let w = s.warning("onClick", "onLongClick");
    assert!(!s.filters().prunes(FilterKind::Ur, w));
}

// --- TT ----------------------------------------------------------------------

const TT: &str = r#"
    app Tt
    activity M {
        field f: M
        cb onCreate { spawn W1  spawn W2 }
    }
    thread W1 in M { cb run { use outer.f } }
    thread W2 in M { cb run { outer.f = null } }
"#;

#[test]
fn thread_thread_pairs_pruned_by_tt() {
    let s = setup(TT);
    let f = s.filters();
    let w = s.warning("run", "run");
    assert!(f.prunes(FilterKind::Tt, w));
    assert!(!f.prunes(FilterKind::Ig, w));
}

#[test]
fn tt_keeps_callback_thread_pairs() {
    let s = setup(
        r#"
        app TtKeep
        activity M {
            field f: M
            cb onCreate { spawn W }
            cb onClick { use f }
        }
        thread W in M { cb run { outer.f = null } }
        "#,
    );
    let w = s.warning("onClick", "run");
    assert!(
        !s.filters().prunes(FilterKind::Tt, w),
        "C-NT pairs are the interesting ones"
    );
}

// --- Figure 1: the harmful cases survive everything -------------------------

const FIG1A: &str = r#"
    app Fig1a
    activity Console {
        field bound: Console
        cb onCreate { bind this }
        cb onServiceConnected { bound = new Console }
        cb onServiceDisconnected { bound = null }
        cb onCreateContextMenu { use bound }
    }
"#;

#[test]
fn fig1a_survives_all_filters() {
    let s = setup(FIG1A);
    let w = s.warning("onCreateContextMenu", "onServiceDisconnected");
    let f = s.filters();
    let outcome = &f.pipeline(vec![w.clone()], FilterKind::all())[0];
    assert!(
        outcome.survives(),
        "harmful EC-PC UAF must survive: {:?}",
        outcome.pruned_by
    );
}

const FIG1B: &str = r#"
    app Fig1b
    activity Console {
        field hostBridge: Console
        cb onCreate { bind this }
        cb onServiceConnected { hostBridge = new Console }
        cb onServiceDisconnected { hostBridge = null }
        cb onClick {
            if hostBridge != null { post R }
        }
    }
    runnable R in Console {
        cb run { use outer.hostBridge }
    }
"#;

#[test]
fn fig1b_survives_all_filters() {
    let s = setup(FIG1B);
    // The harmful pair: the posted run's use vs the disconnect's free.
    let w = s.warning("run", "onServiceDisconnected");
    let f = s.filters();
    let outcome = &f.pipeline(vec![w.clone()], FilterKind::all())[0];
    assert!(
        outcome.survives(),
        "the check in onClick does not protect the posted use: {:?}",
        outcome.pruned_by
    );
}

const FIG1C: &str = r#"
    app Fig1c
    activity Main {
        field jClient: Main
        cb onCreate { jClient = new Main }
        cb onResume { spawn W }
        cb onPause {
            if jClient != null { use jClient }
        }
    }
    thread W in Main {
        cb run { outer.jClient = null }
    }
"#;

#[test]
fn fig1c_survives_all_filters() {
    let s = setup(FIG1C);
    let w = s.warning("onPause", "run");
    let f = s.filters();
    assert!(
        !f.prunes(FilterKind::Ig, w),
        "if-guard is unsafe without atomicity"
    );
    let outcome = &f.pipeline(vec![w.clone()], FilterKind::all())[0];
    assert!(
        outcome.survives(),
        "C-NT UAF must survive: {:?}",
        outcome.pruned_by
    );
}

#[test]
fn fig1c_with_common_lock_is_pruned_by_ig() {
    let s = setup(
        r#"
        app Fig1cLocked
        activity Main {
            field jClient: Main
            field lock: Obj
            cb onCreate { jClient = new Main  lock = new Obj }
            cb onResume { spawn W }
            cb onPause {
                sync lock {
                    if jClient != null { use jClient }
                }
            }
        }
        thread W in Main {
            cb run {
                t1 = load this W.$outer
                t2 = load t1 Main.lock
                sync t2 {
                    free t1 Main.jClient
                }
            }
        }
        class Obj { }
        "#,
    );
    let w = s.warning("onPause", "run");
    assert!(
        s.filters().prunes(FilterKind::Ig, w),
        "guard plus a common lock restores check-to-use atomicity"
    );
}

// --- MHB details -------------------------------------------------------------

#[test]
fn mhb_lifecycle_prunes_oncreate_and_ondestroy_pairs() {
    let s = setup(
        r#"
        app Mhb
        activity M {
            field f: M
            cb onCreate { use f }
            cb onDestroy { f = null }
        }
        "#,
    );
    let w = s.warning("onCreate", "onDestroy");
    assert!(s.filters().prunes(FilterKind::Mhb, w));
}

#[test]
fn mhb_keeps_free_before_use_direction() {
    // Free in onCreate, use in onClick: the deterministic order is
    // free-then-use — a guaranteed NPE, not a false positive. MHB prunes
    // only use-MHB-free.
    let s = setup(
        r#"
        app MhbDir
        activity M {
            field f: M
            cb onCreate { f = null }
            cb onClick { use f }
        }
        "#,
    );
    let w = s.warning("onClick", "onCreate");
    assert!(!s.filters().prunes(FilterKind::Mhb, w));
}

#[test]
fn mhb_asynctask_orders_task_instance() {
    let s = setup(
        r#"
        app MhbTask
        activity M {
            field data: M
            cb onClick { execute T }
        }
        asynctask T in M {
            cb onPreExecute { outer.data = new M  use outer.data }
            cb doInBackground { }
            cb onPostExecute { outer.data = null }
        }
        "#,
    );
    let w = s.warning("onPreExecute", "onPostExecute");
    assert!(
        s.filters().prunes(FilterKind::Mhb, w),
        "pre must precede post"
    );
}

#[test]
fn mhb_asynctask_different_components_not_ordered() {
    // Same task class executed from two different activities: two task
    // instances with different origin sites; pre of one is not ordered
    // with post of the other.
    let s = setup(
        r#"
        app MhbTask2
        activity A { cb onClick { execute T } }
        activity B { cb onClick { execute T } }
        asynctask T {
            field d: T
            cb onPreExecute { use d }
            cb doInBackground { }
            cb onPostExecute { d = null }
        }
        "#,
    );
    let f = s.filters();
    let cross: Vec<&UafWarning> = s
        .warnings
        .iter()
        .filter(|w| {
            s.program.method(w.use_access.method).name() == "onPreExecute"
                && s.threads.thread(w.use_thread).origin_site()
                    != s.threads.thread(w.free_thread).origin_site()
        })
        .collect();
    assert!(!cross.is_empty(), "cross-instance pairs exist");
    for w in cross {
        assert!(
            !f.prunes(FilterKind::Mhb, w),
            "cross-instance AsyncTask pairs stay"
        );
    }
}

// --- §8.1 multi-looper refinement ---------------------------------------

const MULTI_LOOPER: &str = r#"
    app Ml
    activity M {
        field f: M
        cb onCreate { f = new M  send H }
        cb onClick { if f != null { use f } }
    }
    looperthread Worker { }
    handler H in M on Worker {
        cb handleMessage { outer.f = null }
    }
"#;

#[test]
fn ig_does_not_prune_across_loopers() {
    let s = setup(MULTI_LOOPER);
    let w = s.warning("onClick", "handleMessage");
    let f = s.filters();
    assert!(
        !f.prunes(FilterKind::Ig, w),
        "the guard gives no atomicity against a handler on another looper"
    );
    let outcome = &f.pipeline(vec![w.clone()], FilterKind::all())[0];
    assert!(
        outcome.survives(),
        "cross-looper guarded UAF must be reported"
    );
}

#[test]
fn ig_still_prunes_same_custom_looper_pairs() {
    // Both callbacks on the same worker looper are atomic again.
    let s = setup(
        r#"
        app Ml2
        activity M {
            field f: M
            cb onCreate { f = new M  send H1  send H2 }
        }
        looperthread Worker { }
        handler H1 in M on Worker {
            cb handleMessage { if outer.f != null { use outer.f } }
        }
        handler H2 in M on Worker {
            cb handleMessage { outer.f = null }
        }
        "#,
    );
    let w = s.warning("handleMessage", "handleMessage");
    assert!(
        s.filters().prunes(FilterKind::Ig, w),
        "same custom looper restores callback atomicity"
    );
}

// --- thread-level MHB API (used by the no-sleep client) -------------------

#[test]
fn must_happen_before_is_queryable_directly() {
    let s = setup(
        r#"
        app Mq
        activity M {
            field f: M
            cb onCreate { use f }
            cb onClick { }
            cb onDestroy { f = null }
        }
        "#,
    );
    let f = s.filters();
    let find = |name: &str| {
        s.threads
            .threads()
            .find(|(_, t)| t.root().is_some_and(|m| s.program.method(m).name() == name))
            .unwrap()
            .0
    };
    let create = find("onCreate");
    let click = find("onClick");
    let destroy = find("onDestroy");
    assert!(f.must_happen_before(create, click));
    assert!(f.must_happen_before(create, destroy));
    assert!(f.must_happen_before(click, destroy));
    assert!(!f.must_happen_before(destroy, create));
    assert!(!f.must_happen_before(click, create));
}

#[test]
fn pipeline_attribution_uses_first_filter_in_order() {
    // A pair both MHB and IA would prune: MHB comes first in the
    // pipeline, and all_pruning records both (Figure 5's overlap data).
    let s = setup(
        r#"
        app O
        activity M {
            field f: M
            cb onCreate { f = new M  use f }
            cb onDestroy { f = null }
        }
        "#,
    );
    let w = s.warning("onCreate", "onDestroy");
    let outcome = &s.filters().pipeline(vec![w.clone()], FilterKind::all())[0];
    assert_eq!(outcome.pruned_by, Some(FilterKind::Mhb));
    assert!(outcome.all_pruning.contains(&FilterKind::Ia));
    assert!(outcome.all_pruning.len() >= 2);
}

// --- verdicts (audit trail) ------------------------------------------------

#[test]
fn verdicts_agree_with_prunes_for_every_filter() {
    // FilterVerdict.pruned is computed by prunes(), so the audit trail can
    // never drift from the Figure 5 tallies; pin the contract anyway.
    let s = setup(FIG4A);
    let f = s.filters();
    for w in &s.warnings {
        for &kind in FilterKind::all() {
            let v = f.verdict(kind, w);
            assert_eq!(v.kind, kind);
            assert_eq!(v.pruned, f.prunes(kind, w));
            assert!(!v.evidence.is_empty(), "{kind} produced empty evidence");
        }
    }
}

#[test]
fn mhb_verdict_names_the_edge() {
    let s = setup(FIG4A);
    let w = s.warning("onServiceConnected", "onServiceDisconnected");
    let v = s.filters().verdict(FilterKind::Mhb, w);
    assert!(v.pruned);
    assert!(v.evidence.contains("MHB-Service"), "evidence: {}", v.evidence);
}

#[test]
fn unpruned_mhb_verdict_explains_the_absence() {
    let s = setup(
        r#"
        app V
        activity M {
            field f: M
            cb onClick { use f }
            cb onPause { f = null }
        }
        "#,
    );
    let w = s.warning("onClick", "onPause");
    let v = s.filters().verdict(FilterKind::Mhb, w);
    assert!(!v.pruned);
    assert!(
        v.evidence.contains("no must-happens-before edge"),
        "evidence: {}",
        v.evidence
    );
}

#[test]
fn crosscheck_mode_agrees_on_every_filter() {
    // Graph-backed and legacy logic must agree verdict-for-verdict; the
    // crosscheck asserts this inside prunes() itself.
    for src in [FIG4A, FIG4B, FIG4C, FIG4D, FIG4E, FIG4F, FIG4G] {
        let s = setup(src);
        let f = s.filters().with_crosscheck(true);
        for w in &s.warnings {
            for &k in FilterKind::all() {
                let graph = f.prunes(k, w);
                assert_eq!(graph, f.legacy_prunes(k, w), "{k} on {src}");
            }
        }
    }
}

// --- predicate refutation filter ------------------------------------------

use refute::{RefutationReason, Refuter};

impl Setup {
    fn refuter_hb(&self) -> nadroid_hb::HbGraph {
        nadroid_hb::HbGraph::build(&self.program, &self.threads)
    }
}

const DIALOG_DISMISS: &str = r#"
    app RDlg
    activity Main {
        field dlg: Dlg
        field f: Main
        cb onCreate { dlg = new Dlg  show dlg  f = new Main }
        cb onStop { dismiss dlg }
        cb onDestroy { f = null }
    }
    dialog Dlg in Main {
        cb onShow { use outer.f }
    }
"#;

#[test]
fn dialog_dismiss_refutes_the_survivor() {
    let s = setup(DIALOG_DISMISS);
    let w = s.warning("onShow", "onDestroy");
    let f = s.filters();
    // The §6 pipeline keeps this warning (the whole point of the
    // refutation layer)…
    let outcomes = f.pipeline(vec![w.clone()], FilterKind::all());
    assert!(outcomes[0].survives(), "pruned by {:?}", outcomes[0].pruned_by);
    // …and the refuter kills it with a Disabled contradiction chain.
    let hb = s.refuter_hb();
    let r = Refuter::new(&s.program, &s.threads, &hb)
        .refute(w)
        .expect("refuted");
    assert_eq!(r.reason, RefutationReason::Disabled);
    let joined = r.chain.join("\n");
    assert!(joined.contains("dialog"), "chain: {joined}");
    assert!(joined.contains("Dialog.dismiss()"), "chain: {joined}");
    assert!(joined.contains("once-only onCreate"), "chain: {joined}");
}

#[test]
fn pause_only_dismiss_is_not_refuted() {
    // The stop-skip path (onCreate → onStart → onStop → onDestroy) never
    // pauses, so a dismiss in onPause proves nothing: the warning stands.
    let s = setup(
        r#"
        app RDlg
        activity Main {
            field dlg: Dlg
            field f: Main
            cb onCreate { dlg = new Dlg  show dlg  f = new Main }
            cb onPause { dismiss dlg }
            cb onDestroy { f = null }
        }
        dialog Dlg in Main {
            cb onShow { use outer.f }
        }
        "#,
    );
    let w = s.warning("onShow", "onDestroy");
    let hb = s.refuter_hb();
    assert!(Refuter::new(&s.program, &s.threads, &hb).refute(w).is_none());
}

#[test]
fn late_disable_is_not_refuted() {
    // Free in onStop, dismiss only in onDestroy: the automaton orders the
    // free before the dismiss, so the dialog is still armed when the free
    // runs — harmful, and the refuter must keep it.
    let s = setup(
        r#"
        app RDlg
        activity Main {
            field dlg: Dlg
            field f: Main
            cb onCreate { dlg = new Dlg  show dlg  f = new Main }
            cb onStop { f = null }
            cb onDestroy { dismiss dlg }
        }
        dialog Dlg in Main {
            cb onShow { use outer.f }
        }
        "#,
    );
    let w = s.warning("onShow", "onStop");
    let hb = s.refuter_hb();
    assert!(Refuter::new(&s.program, &s.threads, &hb).refute(w).is_none());
}

#[test]
fn fragment_detach_free_is_refuted_by_extended_order() {
    let s = setup(
        r#"
        app RFrag
        manifest { main Main }
        activity Main {
            field f: Main
            cb onCreate { f = new Main }
        }
        fragment Frag in Main {
            cb onCreateView { use Main.f }
            cb onDetach { Main.f = null }
        }
        "#,
    );
    let w = s.warning("onCreateView", "onDetach");
    let f = s.filters();
    let outcomes = f.pipeline(vec![w.clone()], FilterKind::all());
    assert!(outcomes[0].survives(), "pruned by {:?}", outcomes[0].pruned_by);
    let hb = s.refuter_hb();
    let r = Refuter::new(&s.program, &s.threads, &hb)
        .refute(w)
        .expect("refuted");
    assert_eq!(r.reason, RefutationReason::ExtendedOrder);
    assert!(
        r.chain.join("\n").contains("fragment automaton"),
        "chain: {:?}",
        r.chain
    );
}

#[test]
fn task_stack_launch_is_refuted_by_extended_order() {
    let s = setup(
        r#"
        app RTask
        manifest { main Main }
        activity Main {
            field f: Main
            cb onCreate { f = new Main  use f  startactivity Second }
        }
        activity Second {
            cb onCreate { Main.f = null }
        }
        "#,
    );
    let w = s.warning("onCreate", "onCreate");
    let hb = s.refuter_hb();
    let r = Refuter::new(&s.program, &s.threads, &hb)
        .refute(w)
        .expect("refuted");
    assert_eq!(r.reason, RefutationReason::ExtendedOrder);
    assert!(
        r.chain.join("\n").contains("task stack"),
        "chain: {:?}",
        r.chain
    );
}

#[test]
fn alarm_cancel_refutes_the_survivor() {
    let s = setup(
        r#"
        app RAlarm
        activity Main {
            field rcv: Rcv
            field f: Main
            cb onCreate { rcv = new Rcv  schedule rcv  f = new Main }
            cb onStop { cancelalarm rcv }
            cb onDestroy { f = null }
        }
        receiver Rcv {
            cb onAlarm { use Main.f }
        }
        "#,
    );
    let w = s.warning("onAlarm", "onDestroy");
    let hb = s.refuter_hb();
    let r = Refuter::new(&s.program, &s.threads, &hb)
        .refute(w)
        .expect("refuted");
    assert_eq!(r.reason, RefutationReason::Disabled);
    assert!(
        r.chain.join("\n").contains("AlarmManager.cancel()"),
        "chain: {:?}",
        r.chain
    );
}

#[test]
fn paper_survivors_are_never_refuted() {
    // The refuter runs over §6 *survivors*; on the paper programs (which
    // use no summarized enable/disable pair beyond what MHB already
    // orders) it must be a strict no-op: every surviving warning stands.
    for src in [FIG4A, FIG4B, FIG4C, FIG4D, FIG4E, FIG4F, FIG4G] {
        let s = setup(src);
        let f = s.filters();
        let outcomes = f.pipeline(s.warnings.clone(), FilterKind::all());
        let hb = s.refuter_hb();
        let r = Refuter::new(&s.program, &s.threads, &hb);
        for o in outcomes.iter().filter(|o| o.survives()) {
            assert!(
                r.refute(&o.warning).is_none(),
                "refuted a surviving paper warning in {src}: {:?}",
                o.warning.pair()
            );
        }
    }
}
