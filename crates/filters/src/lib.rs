//! The sound and unsound false-positive filters of §6.
//!
//! nAdroid prunes potential UAF warnings with filters derived from the
//! Android concurrency model and its happens-before relation:
//!
//! | Filter | Kind | Rule |
//! |---|---|---|
//! | MHB | sound | use must-happen-before free (Service, AsyncTask, Lifecycle) |
//! | IG | sound | use guarded by a null check, under atomicity or a common lock |
//! | IA | sound | must-allocation before the use in the same callback |
//! | RHB | unsound | `onResume` may re-allocate before a UI-use / `onPause`-free pair |
//! | CHB | unsound | the freeing callback may cancel the use's callback family |
//! | PHB | unsound | the use's callback posted the freeing callback |
//! | MA | unsound | IA with custom getters assumed non-null |
//! | UR | unsound | the use only flows to return/argument positions |
//! | TT | unsound | both endpoints are native (non-looper) threads |
//!
//! Filters are independent, composable passes: [`Filters::prunes`]
//! answers one filter for one warning (Figure 5 measures them
//! individually), and [`Filters::pipeline`] applies a sequence with
//! first-pruner attribution (the Table 1 columns).
//!
//! The HB-family filters (MHB, RHB, CHB, PHB) are answered by the
//! materialized happens-before graph ([`nadroid_hb::HbGraph`]) rather
//! than private lineage walks; the pre-graph logic is kept as
//! [`Filters::legacy_prunes`] and asserted equivalent under
//! [`Filters::with_crosscheck`] (the CI parity gate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod nosleep;
pub mod refute;

use nadroid_android::lifecycle;
use nadroid_android::{CallbackKind, CancelApi};
use nadroid_detector::{common_must_lock, UafWarning, UseConsumption};
use nadroid_hb::{HbEdgeKind, HbGraph};
use nadroid_ir::Program;
use nadroid_pointsto::{Escape, PointsTo};
use nadroid_threadify::resolve::SiteAction;
use nadroid_threadify::{SpawnVia, ThreadId, ThreadKind, ThreadModel};
use std::fmt;

/// The nine filters of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FilterKind {
    /// Must-happens-before (sound, §6.1.1).
    Mhb,
    /// If-guard (sound, §6.1.2).
    Ig,
    /// Intra-allocation (sound, §6.1.3).
    Ia,
    /// Resume-happens-before (unsound, §6.2.1).
    Rhb,
    /// Cancel-happens-before (unsound, §6.2.1).
    Chb,
    /// Post-happens-before (unsound, §6.2.1).
    Phb,
    /// Maybe-allocation (unsound, §6.2.2).
    Ma,
    /// Used-for-return (unsound, §6.2.3).
    Ur,
    /// Thread-thread (unsound, §6.2.4).
    Tt,
}

impl FilterKind {
    /// All filters in pipeline order (sound first, as in §8.3).
    #[must_use]
    pub fn all() -> &'static [FilterKind] {
        use FilterKind::*;
        &[Mhb, Ig, Ia, Rhb, Chb, Phb, Ma, Ur, Tt]
    }

    /// The sound filters.
    #[must_use]
    pub fn sound() -> &'static [FilterKind] {
        use FilterKind::*;
        &[Mhb, Ig, Ia]
    }

    /// The unsound filters.
    #[must_use]
    pub fn unsound() -> &'static [FilterKind] {
        use FilterKind::*;
        &[Rhb, Chb, Phb, Ma, Ur, Tt]
    }

    /// The may-happens-before family (RHB + CHB + PHB), reported jointly
    /// as "mayHB" in Figure 5(b).
    #[must_use]
    pub fn may_hb() -> &'static [FilterKind] {
        use FilterKind::*;
        &[Rhb, Chb, Phb]
    }

    /// Whether the filter is sound (never prunes a feasible UAF).
    #[must_use]
    pub fn is_sound(self) -> bool {
        matches!(self, FilterKind::Mhb | FilterKind::Ig | FilterKind::Ia)
    }

    /// Short display name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FilterKind::Mhb => "MHB",
            FilterKind::Ig => "IG",
            FilterKind::Ia => "IA",
            FilterKind::Rhb => "RHB",
            FilterKind::Chb => "CHB",
            FilterKind::Phb => "PHB",
            FilterKind::Ma => "MA",
            FilterKind::Ur => "UR",
            FilterKind::Tt => "TT",
        }
    }
}

impl fmt::Display for FilterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of running a filter pipeline over one warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterOutcome {
    /// The warning.
    pub warning: UafWarning,
    /// The first filter (in pipeline order) that pruned it, if any.
    pub pruned_by: Option<FilterKind>,
    /// Every filter in the pipeline that would prune it individually
    /// (Figure 5 overlap analysis).
    pub all_pruning: Vec<FilterKind>,
}

impl FilterOutcome {
    /// Whether the warning survived the pipeline.
    #[must_use]
    pub fn survives(&self) -> bool {
        self.pruned_by.is_none()
    }
}

/// Per-filter examined/killed counts at distinct (use, free)-pair
/// granularity — one Figure 5 bar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterTally {
    /// The filter.
    pub kind: FilterKind,
    /// Distinct pairs the filter was evaluated on (the base population).
    pub examined: usize,
    /// Distinct pairs the filter prunes on its own.
    pub killed: usize,
}

/// Tally each filter in `kinds` over a set of pipeline outcomes. The
/// outcomes must come from a [`Filters::pipeline`] run with the same
/// `kinds` (their `all_pruning` records exactly those filters).
///
/// This is the single accounting used by both the analysis-time metric
/// counters and the Figure 5 driver, so the two agree by construction.
#[must_use]
pub fn tally_outcomes(outcomes: &[FilterOutcome], kinds: &[FilterKind]) -> Vec<FilterTally> {
    let examined = distinct_pairs_of(outcomes, |_| true);
    kinds
        .iter()
        .map(|&kind| FilterTally {
            kind,
            examined,
            killed: distinct_pairs_of(outcomes, |o| o.all_pruning.contains(&kind)),
        })
        .collect()
}

/// Distinct pairs pruned by *any* of `kinds` — Figure 5(b) reports the
/// RHB/CHB/PHB family jointly as "mayHB" through this.
#[must_use]
pub fn distinct_killed_by_any(outcomes: &[FilterOutcome], kinds: &[FilterKind]) -> usize {
    distinct_pairs_of(outcomes, |o| {
        kinds.iter().any(|k| o.all_pruning.contains(k))
    })
}

/// Emit `filter.<NAME>.examined` / `filter.<NAME>.killed` counters for a
/// pipeline run into the installed [`nadroid_obs`] recorder (no-op when
/// none is installed). When `kinds` contains the whole mayHB family, a
/// joint `filter.mayHB.killed` counter is emitted too, matching Figure
/// 5(b)'s folded bar.
pub fn record_tallies(outcomes: &[FilterOutcome], kinds: &[FilterKind]) {
    if !nadroid_obs::recording() {
        return;
    }
    for t in tally_outcomes(outcomes, kinds) {
        nadroid_obs::counter(
            &format!("filter.{}.examined", t.kind.name()),
            t.examined as u64,
        );
        nadroid_obs::counter(&format!("filter.{}.killed", t.kind.name()), t.killed as u64);
    }
    if FilterKind::may_hb().iter().all(|k| kinds.contains(k)) {
        nadroid_obs::counter(
            "filter.mayHB.killed",
            distinct_killed_by_any(outcomes, FilterKind::may_hb()) as u64,
        );
    }
}

fn distinct_pairs_of(
    outcomes: &[FilterOutcome],
    mut keep: impl FnMut(&FilterOutcome) -> bool,
) -> usize {
    let mut pairs: Vec<_> = outcomes
        .iter()
        .filter(|o| keep(o))
        .map(|o| o.warning.pair())
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len()
}

/// One filter's examination of one warning, with concrete evidence for
/// the verdict — the audit-trail unit behind `nadroid explain`.
///
/// `pruned` always equals [`Filters::prunes`] for the same inputs (it is
/// computed by that call), so the audit agrees with Figure 5 tallies by
/// construction; `evidence` re-derives the human-readable *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterVerdict {
    /// The filter that examined the warning.
    pub kind: FilterKind,
    /// Whether it prunes the warning when applied individually.
    pub pruned: bool,
    /// Concrete evidence for the verdict (MHB edge, guard/lockset,
    /// allocation witness, cancel site, …).
    pub evidence: String,
}

/// Where the filter engine's happens-before graph comes from: built and
/// owned by the engine ([`Filters::new`]) or borrowed from a caller that
/// already materialized it ([`Filters::with_hb`] — the analysis pipeline,
/// which also hands the graph to the detector's pre-prune).
#[derive(Debug)]
enum HbSource<'a> {
    Owned(Box<HbGraph>),
    Borrowed(&'a HbGraph),
}

/// Filter engine bound to one analyzed program.
#[derive(Debug)]
pub struct Filters<'a> {
    program: &'a Program,
    threads: &'a ThreadModel,
    pts: &'a PointsTo,
    hb: HbSource<'a>,
    crosscheck: bool,
}

impl<'a> Filters<'a> {
    /// Bind the filter engine to analysis results, materializing its own
    /// happens-before graph.
    #[must_use]
    pub fn new(
        program: &'a Program,
        threads: &'a ThreadModel,
        pts: &'a PointsTo,
        escape: &'a Escape,
    ) -> Self {
        let _ = escape; // reserved: escape-aware refinements
        Filters {
            program,
            threads,
            pts,
            hb: HbSource::Owned(Box::new(HbGraph::build(program, threads))),
            crosscheck: false,
        }
    }

    /// [`Filters::new`] over a happens-before graph the caller already
    /// built — avoids a second graph construction (and a second round of
    /// `hb.*` counters) when the analysis pipeline owns the graph.
    #[must_use]
    pub fn with_hb(
        program: &'a Program,
        threads: &'a ThreadModel,
        pts: &'a PointsTo,
        escape: &'a Escape,
        hb: &'a HbGraph,
    ) -> Self {
        let _ = escape; // reserved: escape-aware refinements
        Filters {
            program,
            threads,
            pts,
            hb: HbSource::Borrowed(hb),
            crosscheck: false,
        }
    }

    /// Enable crosscheck mode: every [`Filters::prunes`] call also runs
    /// the legacy per-filter logic and panics on disagreement. The CI
    /// parity gate runs the evaluation corpus through this.
    #[must_use]
    pub fn with_crosscheck(mut self, on: bool) -> Self {
        self.crosscheck = on;
        self
    }

    /// The happens-before graph answering the HB-family filters.
    #[must_use]
    pub fn hb(&self) -> &HbGraph {
        match &self.hb {
            HbSource::Owned(g) => g,
            HbSource::Borrowed(g) => g,
        }
    }

    /// Whether `kind` prunes `w` when applied individually.
    #[must_use]
    pub fn prunes(&self, kind: FilterKind, w: &UafWarning) -> bool {
        let pruned = match kind {
            FilterKind::Mhb => self.mhb(w),
            FilterKind::Ig => self.ig(w),
            FilterKind::Ia => self.ia(w),
            FilterKind::Rhb => self.rhb(w),
            FilterKind::Chb => self.chb(w),
            FilterKind::Phb => self.phb(w),
            FilterKind::Ma => self.ma(w),
            FilterKind::Ur => self.ur(w),
            FilterKind::Tt => self.tt(w),
        };
        if self.crosscheck {
            let legacy = self.legacy_prunes(kind, w);
            assert_eq!(
                pruned,
                legacy,
                "HB-graph and legacy logic disagree on {kind} for pair {:?}",
                w.pair()
            );
        }
        pruned
    }

    /// The pre-graph per-filter logic, kept verbatim for crosscheck mode
    /// and the parity suite. The filters with no HB component (IG, IA,
    /// MA, UR, TT) share one implementation with [`Filters::prunes`].
    #[must_use]
    pub fn legacy_prunes(&self, kind: FilterKind, w: &UafWarning) -> bool {
        match kind {
            FilterKind::Mhb => self.legacy_mhb(w),
            FilterKind::Ig => self.ig(w),
            FilterKind::Ia => self.ia(w),
            FilterKind::Rhb => self.legacy_rhb(w),
            FilterKind::Chb => self.legacy_chb(w),
            FilterKind::Phb => self.legacy_phb(w),
            FilterKind::Ma => self.ma(w),
            FilterKind::Ur => self.ur(w),
            FilterKind::Tt => self.tt(w),
        }
    }

    /// Examine one warning with one filter and report the verdict with
    /// concrete evidence. The `pruned` bit is [`Filters::prunes`] itself.
    #[must_use]
    pub fn verdict(&self, kind: FilterKind, w: &UafWarning) -> FilterVerdict {
        let pruned = self.prunes(kind, w);
        let evidence = match kind {
            FilterKind::Mhb => self.mhb_evidence(w, pruned),
            FilterKind::Ig => self.ig_evidence(w, pruned),
            FilterKind::Ia => self.alloc_evidence(w, pruned, false),
            FilterKind::Rhb => self.rhb_evidence(w, pruned),
            FilterKind::Chb => self.chb_evidence(w, pruned),
            FilterKind::Phb => self.phb_evidence(w, pruned),
            FilterKind::Ma => self.alloc_evidence(w, pruned, true),
            FilterKind::Ur => self.ur_evidence(w),
            FilterKind::Tt => self.tt_evidence(w),
        };
        FilterVerdict {
            kind,
            pruned,
            evidence,
        }
    }

    /// Apply a filter sequence to each warning, recording the first
    /// pruner and the full set of agreeing filters.
    ///
    /// Each warning's verdicts are independent reads of the shared
    /// program/HB/points-to state, so the warning list is partitioned
    /// into contiguous chunks mapped in parallel and re-concatenated in
    /// warning-index order — the outcome vector is identical at any
    /// thread count.
    #[must_use]
    pub fn pipeline(&self, warnings: Vec<UafWarning>, kinds: &[FilterKind]) -> Vec<FilterOutcome> {
        const CHUNK_WARNINGS: usize = 32;
        let chunks = nadroid_par::map_chunks(warnings.len(), CHUNK_WARNINGS, |range| {
            warnings[range]
                .iter()
                .map(|w| {
                    kinds
                        .iter()
                        .copied()
                        .filter(|&k| self.prunes(k, w))
                        .collect::<Vec<FilterKind>>()
                })
                .collect::<Vec<_>>()
        });
        warnings
            .into_iter()
            .zip(chunks.into_iter().flatten())
            .map(|(warning, all_pruning)| FilterOutcome {
                pruned_by: all_pruning.first().copied(),
                all_pruning,
                warning,
            })
            .collect()
    }

    // --- helpers -----------------------------------------------------------

    /// The callback kind a modeled thread behaves as for MHB purposes
    /// (`doInBackground` bodies participate in the AsyncTask order).
    fn effective_kind(&self, t: ThreadId) -> Option<CallbackKind> {
        match self.threads.thread(t).kind() {
            ThreadKind::Callback(k) => Some(k),
            ThreadKind::TaskBody => Some(CallbackKind::DoInBackground),
            ThreadKind::DummyMain | ThreadKind::Native => None,
        }
    }

    fn same_component(&self, a: ThreadId, b: ThreadId) -> bool {
        let ca = self.threads.thread(a).component();
        ca.is_some() && ca == self.threads.thread(b).component()
    }

    fn same_class(&self, a: ThreadId, b: ThreadId) -> bool {
        let ca = self.threads.thread(a).class();
        ca.is_some() && ca == self.threads.thread(b).class()
    }

    fn same_origin(&self, a: ThreadId, b: ThreadId) -> bool {
        self.threads.thread(a).origin_site() == self.threads.thread(b).origin_site()
    }

    /// Whether the two endpoints of a warning execute atomically with
    /// respect to each other (both are looper callbacks).
    fn atomic(&self, w: &UafWarning) -> bool {
        self.threads.atomic_pair(w.use_thread, w.free_thread)
    }

    /// Guard/allocation filters require atomicity; for concurrent pairs
    /// they still apply under a common must-lock (§6.1.2).
    fn atomically_protected(&self, w: &UafWarning) -> bool {
        self.atomic(w) || common_must_lock(self.pts, &w.use_access, &w.free_access)
    }

    /// Whether the guard base matches the use base (same local, or equal
    /// non-empty points-to sets).
    fn guarded(&self, w: &UafWarning) -> bool {
        let u = &w.use_access;
        if u.ctx.guarded_non_null(u.base, u.field) {
            return true;
        }
        u.ctx.guards.iter().any(|g| {
            g.non_null && g.field == u.field && {
                let a = self.pts.pts(u.method, g.base);
                let b = self.pts.pts(u.method, u.base);
                !a.is_empty() && a == b
            }
        })
    }

    // --- sound filters ------------------------------------------------------

    /// The three sound must-happens-before relations at thread
    /// granularity (§6.1.1): whether every execution orders callbacks of
    /// `first` strictly before callbacks of `second`. Public so other
    /// ordering-violation clients (e.g. the no-sleep detector) can reuse
    /// it. Answered by the graph's *direct* edge relations (exactly the
    /// §6.1.1 semantics); the transitive extension is
    /// [`HbGraph::must_hb`].
    #[must_use]
    pub fn must_happen_before(&self, first: ThreadId, second: ThreadId) -> bool {
        self.hb().mhb_edge(first, second).is_some()
    }

    /// Pre-graph [`Filters::must_happen_before`], kept for the
    /// crosscheck.
    fn legacy_must_happen_before(&self, first: ThreadId, second: ThreadId) -> bool {
        let (Some(uk), Some(fk)) = (self.effective_kind(first), self.effective_kind(second)) else {
            return false;
        };
        // MHB-Service: same connection class.
        if lifecycle::service_mhb(uk, fk) && self.same_class(first, second) {
            return true;
        }
        // MHB-AsyncTask: same task class and same execute site (same
        // task instance).
        if lifecycle::asynctask_mhb(uk, fk)
            && self.same_class(first, second)
            && self.same_origin(first, second)
        {
            return true;
        }
        // MHB-Lifecycle: same component.
        if lifecycle::lifecycle_mhb(uk, fk) && self.same_component(first, second) {
            return true;
        }
        false
    }

    /// MHB (§6.1.1): prune when the use must happen before the free.
    fn mhb(&self, w: &UafWarning) -> bool {
        self.must_happen_before(w.use_thread, w.free_thread)
    }

    /// Pre-graph MHB, kept for the crosscheck.
    fn legacy_mhb(&self, w: &UafWarning) -> bool {
        self.legacy_must_happen_before(w.use_thread, w.free_thread)
    }

    /// IG (§6.1.2): the use is null-checked, and check-to-use atomicity
    /// holds (same looper, or a common lock for concurrent pairs).
    fn ig(&self, w: &UafWarning) -> bool {
        self.guarded(w) && self.atomically_protected(w)
    }

    /// IA (§6.1.3): a must-allocation dominates the use inside its
    /// (atomic) callback.
    fn ia(&self, w: &UafWarning) -> bool {
        self.atomically_protected(w)
            && dataflow::must_alloc_before(
                self.program,
                self.pts,
                w.use_access.method,
                w.use_access.instr,
                w.use_access.base,
                w.use_access.field,
                dataflow::AllocSources { getters: false },
            )
    }

    // --- unsound filters -----------------------------------------------------

    /// RHB (§6.2.1): UI-use / `onPause`-free pairs are pruned when
    /// `onResume` of the same component may re-allocate the field —
    /// the graph's re-entry edges.
    fn rhb(&self, w: &UafWarning) -> bool {
        self.hb()
            .reentry_hb(w.use_thread, w.free_thread, w.use_access.field)
    }

    /// Pre-graph RHB, kept for the crosscheck.
    fn legacy_rhb(&self, w: &UafWarning) -> bool {
        let (Some(uk), Some(fk)) = (
            self.effective_kind(w.use_thread),
            self.effective_kind(w.free_thread),
        ) else {
            return false;
        };
        if fk != CallbackKind::OnPause || !(uk.is_ui() || uk.is_system()) {
            return false;
        }
        if !self.same_component(w.use_thread, w.free_thread) {
            return false;
        }
        // Find onResume threads of the same component and check for a
        // may-allocation of the racy field.
        self.threads.threads().any(|(_, mt)| {
            mt.kind().callback_kind() == Some(CallbackKind::OnResume)
                && mt.component() == self.threads.thread(w.use_thread).component()
                && mt.root().is_some_and(|root| {
                    dataflow::may_alloc_field(self.program, root, w.use_access.field)
                })
        })
    }

    /// CHB (§6.2.1): the freeing callback may invoke a cancellation API
    /// silencing the use's callback family, so the use must precede the
    /// free — the graph's cancel edges.
    fn chb(&self, w: &UafWarning) -> bool {
        self.hb().cancel_hb(w.use_thread, w.free_thread).is_some()
    }

    /// Pre-graph CHB, kept for the crosscheck.
    fn legacy_chb(&self, w: &UafWarning) -> bool {
        let Some(uk) = self.effective_kind(w.use_thread) else {
            return false;
        };
        let use_class = self.threads.thread(w.use_thread).class();
        for site in self.threads.sites_of(w.free_thread) {
            let cancels = match site.action {
                SiteAction::Finish => {
                    CancelApi::Finish.scope().covers(uk)
                        && self.same_component(w.use_thread, w.free_thread)
                }
                SiteAction::Unbind(c) => {
                    CancelApi::UnbindService.scope().covers(uk) && use_class == Some(c)
                }
                SiteAction::Unregister(c) => {
                    CancelApi::UnregisterReceiver.scope().covers(uk) && use_class == Some(c)
                }
                SiteAction::RemovePosts(c) => {
                    CancelApi::RemoveCallbacksAndMessages.scope().covers(uk) && use_class == Some(c)
                }
                _ => false,
            };
            if cancels {
                return true;
            }
        }
        false
    }

    /// PHB (§6.2.1): the use's callback posted the freeing callback on
    /// the same looper, so the (atomic) use completes before the free
    /// runs — the graph's looper-restricted post edges.
    fn phb(&self, w: &UafWarning) -> bool {
        self.hb().post_hb(w.use_thread, w.free_thread)
    }

    /// Pre-graph PHB, kept for the crosscheck.
    fn legacy_phb(&self, w: &UafWarning) -> bool {
        let free = self.threads.thread(w.free_thread);
        free.parent() == Some(w.use_thread)
            && matches!(free.via(), SpawnVia::Post | SpawnVia::Send)
            && self.atomic(w)
    }

    /// MA (§6.2.2): IA with custom getters assumed to never return null.
    fn ma(&self, w: &UafWarning) -> bool {
        self.atomically_protected(w)
            && dataflow::must_alloc_before(
                self.program,
                self.pts,
                w.use_access.method,
                w.use_access.instr,
                w.use_access.base,
                w.use_access.field,
                dataflow::AllocSources { getters: true },
            )
    }

    /// UR (§6.2.3): the loaded value only flows to return/argument
    /// positions (or nowhere), so the use is commonly benign.
    fn ur(&self, w: &UafWarning) -> bool {
        matches!(
            w.use_access.consumption,
            UseConsumption::ReturnOrArgOnly | UseConsumption::Unused
        )
    }

    /// TT (§6.2.4): both endpoints are native (non-looper) threads.
    fn tt(&self, w: &UafWarning) -> bool {
        !self.threads.thread(w.use_thread).kind().on_looper()
            && !self.threads.thread(w.free_thread).kind().on_looper()
    }

    // --- evidence (audit trail) ---------------------------------------------

    fn lineage(&self, t: ThreadId) -> String {
        self.threads.lineage_string(self.program, t)
    }

    fn field_name(&self, w: &UafWarning) -> String {
        let f = self.program.field(w.field);
        format!("{}.{}", self.program.class(f.owner()).name(), f.name())
    }

    /// Why check-to-use atomicity holds (only valid when it does).
    fn protection_reason(&self, w: &UafWarning) -> &'static str {
        if self.atomic(w) {
            "both endpoints run atomically on the same looper"
        } else {
            "a common must-lock covers both endpoints"
        }
    }

    fn mhb_evidence(&self, w: &UafWarning, pruned: bool) -> String {
        let u = self.lineage(w.use_thread);
        let f = self.lineage(w.free_thread);
        if !pruned {
            return format!("no must-happens-before edge orders [{u}] before [{f}]");
        }
        // The graph's direct edge, labeled in the order the legacy logic
        // checked the relations (Service, AsyncTask, Lifecycle).
        let relation = match self.hb().mhb_edge(w.use_thread, w.free_thread) {
            Some(HbEdgeKind::MhbService) => "MHB-Service edge (same connection class)",
            Some(HbEdgeKind::MhbAsyncTask) => "MHB-AsyncTask edge (same task instance)",
            Some(HbEdgeKind::MhbLifecycle) => "MHB-Lifecycle edge (same component)",
            _ => "must-happens-before edge",
        };
        format!("{relation}: [{u}] completes before [{f}] in every execution")
    }

    fn ig_evidence(&self, w: &UafWarning, pruned: bool) -> String {
        let field = self.field_name(w);
        if pruned {
            format!(
                "a non-null check on {field} dominates the use, and {}",
                self.protection_reason(w)
            )
        } else if !self.guarded(w) {
            format!("no non-null check on {field} dominates the use")
        } else {
            format!(
                "a non-null check on {field} dominates the use, but without atomicity \
                 or a common lock the field may be freed between check and use"
            )
        }
    }

    /// Shared IA/MA evidence; `getters` selects the MA allocation sources.
    fn alloc_evidence(&self, w: &UafWarning, pruned: bool, getters: bool) -> String {
        let field = self.field_name(w);
        let sources = if getters {
            "must-allocation (or custom getter assumed non-null)"
        } else {
            "must-allocation"
        };
        if pruned {
            format!(
                "a {sources} of {field} dominates the use in its callback, and {}",
                self.protection_reason(w)
            )
        } else if !self.atomically_protected(w) {
            "the pair is neither atomic nor commonly locked, so a dominating \
             allocation cannot protect the use"
                .into()
        } else {
            format!("no {sources} of {field} dominates the use inside its callback")
        }
    }

    fn rhb_evidence(&self, w: &UafWarning, pruned: bool) -> String {
        if pruned {
            format!(
                "onPause frees {}, but onResume of the same component may \
                 re-allocate it before the next UI use",
                self.field_name(w)
            )
        } else {
            "not a UI-use / onPause-free pair with an onResume re-allocation \
             in the same component"
                .into()
        }
    }

    fn chb_evidence(&self, w: &UafWarning, pruned: bool) -> String {
        if !pruned {
            return "the freeing callback invokes no cancellation API covering \
                    the use's callback family"
                .into();
        }
        // The graph's cancel edge records the first matching cancel site
        // in the free thread's site order — the same site the legacy
        // logic accepted.
        let api = match self.hb().cancel_hb(w.use_thread, w.free_thread) {
            Some(CancelApi::Finish) => "Activity.finish()",
            Some(CancelApi::UnbindService) => "Context.unbindService()",
            Some(CancelApi::UnregisterReceiver) => "Context.unregisterReceiver()",
            Some(CancelApi::RemoveCallbacksAndMessages) => "Handler.removeCallbacksAndMessages()",
            None => "a cancellation API",
        };
        format!(
            "the freeing callback calls {api}, silencing [{}]'s callback family",
            self.lineage(w.use_thread)
        )
    }

    fn phb_evidence(&self, w: &UafWarning, pruned: bool) -> String {
        if pruned {
            format!(
                "the freeing callback was posted by the use's callback [{}] and \
                 both run atomically on the same looper",
                self.lineage(w.use_thread)
            )
        } else {
            "the freeing callback was not posted by the use's callback on a \
             shared looper"
                .into()
        }
    }

    fn ur_evidence(&self, w: &UafWarning) -> String {
        match w.use_access.consumption {
            UseConsumption::ReturnOrArgOnly => {
                "the loaded value flows only to return/argument positions".into()
            }
            UseConsumption::Unused => "the loaded value is never consumed".into(),
            UseConsumption::Dereferenced => {
                "the loaded value is dereferenced, so a null would throw".into()
            }
        }
    }

    fn tt_evidence(&self, w: &UafWarning) -> String {
        let side = |t: ThreadId| {
            if self.threads.thread(t).kind().on_looper() {
                "a looper callback"
            } else {
                "a native thread"
            }
        };
        format!(
            "use runs on {} [{}], free runs on {} [{}]",
            side(w.use_thread),
            self.lineage(w.use_thread),
            side(w.free_thread),
            self.lineage(w.free_thread)
        )
    }
}

#[cfg(test)]
mod tests;
