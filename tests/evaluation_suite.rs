//! Suite-level integration tests: the 27-app Table 1 models and the
//! Table 2 injection study must reproduce the paper's aggregate shape.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::corpus::{generate, spec_for, table1_rows, table2_rows, Expectation, PatternKind};

/// Every suite app's pipeline output must equal its planted ground truth
/// (the per-pattern expectations are certified individually in the corpus
/// crate; this checks they stay independent when composed at scale).
#[test]
fn all_27_apps_match_planted_ground_truth() {
    for row in table1_rows() {
        let app = generate(&spec_for(&row));
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let s = analysis.summary();
        let detected = app.planted.iter().filter(|k| k.detected()).count();
        let surviving = app
            .planted
            .iter()
            .filter(|k| {
                matches!(
                    k.expectation(),
                    Expectation::Harmful(_) | Expectation::FalsePositive(_)
                )
            })
            .count();
        assert_eq!(s.potential, detected, "{}: potential pairs", row.name);
        assert_eq!(s.after_unsound, surviving, "{}: surviving pairs", row.name);
    }
}

#[test]
fn suite_totals_track_the_paper() {
    let mut potential = 0usize;
    let mut after_sound = 0usize;
    let mut after_unsound = 0usize;
    let mut harmful = 0usize;
    for row in table1_rows() {
        let app = generate(&spec_for(&row));
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let s = analysis.summary();
        potential += s.potential;
        after_sound += s.after_sound;
        after_unsound += s.after_unsound;
        harmful += app
            .planted
            .iter()
            .filter(|k| matches!(k.expectation(), Expectation::Harmful(_)))
            .count();
    }
    assert_eq!(harmful, 88, "the paper's 88 confirmed harmful UAFs");
    // Aggregate reductions (paper: sound 88%, combined 96%).
    let sound_reduction = 1.0 - after_sound as f64 / potential as f64;
    let combined = 1.0 - after_unsound as f64 / potential as f64;
    assert!(
        (0.75..=0.95).contains(&sound_reduction),
        "sound filters prune most pairs: {sound_reduction:.2}"
    );
    assert!(
        (0.90..=0.99).contains(&combined),
        "combined reduction ~96%: {combined:.2}"
    );
}

#[test]
fn table2_injection_outcomes_reproduce() {
    let mut injected = 0usize;
    let mut missed = 0usize;
    let mut pruned = 0usize;
    for row in table2_rows() {
        let app = generate(&row.spec());
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let detected: Vec<usize> = analysis
            .warnings()
            .iter()
            .filter_map(|w| cluster_of_field(&app.program, w.field))
            .collect();
        let survived: Vec<usize> = analysis
            .survivors()
            .iter()
            .filter_map(|w| cluster_of_field(&app.program, w.field))
            .collect();
        for (idx, kind) in app.planted.iter().enumerate() {
            let is_injection = kind.is_real_uaf() || *kind == PatternKind::MissedOpaque;
            if !is_injection {
                continue;
            }
            injected += 1;
            if !detected.contains(&idx) {
                missed += 1;
            } else if !survived.contains(&idx) {
                pruned += 1;
            }
        }
    }
    assert_eq!(injected, 28);
    assert_eq!(missed, 2, "the two framework-laundered UAFs (Mms)");
    assert_eq!(
        pruned, 3,
        "the three error-path finish() UAFs (Browser, Puzzles)"
    );
}

fn cluster_of_field(program: &nadroid::ir::Program, field: nadroid::ir::FieldId) -> Option<usize> {
    let name = program.field(field).name();
    let digits: String = name
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().ok()
}

#[test]
fn figure5_shares_are_near_the_paper() {
    use nadroid::filters::FilterKind;
    // Measure individual filter effectiveness over the test group.
    let apps: Vec<_> = table1_rows()
        .into_iter()
        .filter(|r| matches!(r.group, nadroid::corpus::AppGroup::Test))
        .map(|r| generate(&spec_for(&r)))
        .collect();
    let mut potential = 0usize;
    let mut pruned_by = std::collections::BTreeMap::new();
    for app in &apps {
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        potential += analysis.summary().potential;
        let filters = analysis.filters();
        for &k in FilterKind::sound() {
            let mut pairs: Vec<_> = analysis
                .warnings()
                .iter()
                .filter(|w| filters.prunes(k, w))
                .map(nadroid::detector::UafWarning::pair)
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            *pruned_by.entry(k).or_insert(0usize) += pairs.len();
        }
    }
    let share = |k| pruned_by.get(&k).copied().unwrap_or(0) as f64 / potential as f64 * 100.0;
    // Paper: MHB 21%, IG 66%, IA 13% (each ±7 points of slack for the
    // scaled models).
    assert!(
        (share(FilterKind::Mhb) - 21.0).abs() < 7.0,
        "MHB {:.1}",
        share(FilterKind::Mhb)
    );
    assert!(
        (share(FilterKind::Ig) - 66.0).abs() < 7.0,
        "IG {:.1}",
        share(FilterKind::Ig)
    );
    assert!(
        (share(FilterKind::Ia) - 13.0).abs() < 7.0,
        "IA {:.1}",
        share(FilterKind::Ia)
    );
}

/// Heavy sanity run at a larger scale exponent (ignored by default; run
/// with `cargo test --release -- --ignored` or set `NADROID_SCALE_EXP`).
#[test]
#[ignore = "heavy: runs K-9 at ~1.4k clusters"]
fn k9_at_larger_scale_stays_consistent() {
    std::env::set_var("NADROID_SCALE_EXP", "0.68");
    let rows = table1_rows();
    let row = rows.iter().find(|r| r.name == "K-9").unwrap();
    let app = generate(&spec_for(row));
    std::env::remove_var("NADROID_SCALE_EXP");
    let analysis = analyze(&app.program, &AnalysisConfig::default());
    let s = analysis.summary();
    let detected = app.planted.iter().filter(|k| k.detected()).count();
    assert_eq!(s.potential, detected, "ground truth holds at scale");
    assert!(s.potential > 1000, "scaled up: {}", s.potential);
}
