//! Integration tests for the CLI on the shipped sample app models.

use nadroid_cli::{parse_args, run, Command};

fn app(p: &str) -> String {
    format!("{}/apps/{p}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn connectbot_report_has_both_figure1_warnings() {
    let out = run(&Command::Analyze {
        path: app("connectbot.dsl"),
        validate: false,
        sound_only: false,
        k: 2,
        json: false,
        baseline: None,
        update_baseline: false,
        trace: None,
        report: None,
        provenance: None,
        stats: false,
        mhp_preprune: false,
        threads: None,
    })
    .unwrap();
    assert!(out.contains("2 surviving warning(s)"), "{out}");
    assert!(out.contains("[PC-PC] ConsoleActivity.hostBridge"), "{out}");
    assert!(out.contains("[EC-PC] ConsoleActivity.bound"), "{out}");
}

#[test]
fn firefox_dot_shows_the_thread() {
    let out = run(&Command::Dot {
        path: app("firefox.dsl"),
    })
    .unwrap();
    assert!(out.contains("AbortTask.run"), "{out}");
    assert!(
        out.contains("shape=ellipse"),
        "native threads are ellipses: {out}"
    );
    assert!(out.contains("Spawn"), "{out}");
}

#[test]
fn downloader_nosleep_finds_both_acquires() {
    let out = run(&Command::NoSleep {
        path: app("downloader.dsl"),
    })
    .unwrap();
    assert!(out.contains("2 no-sleep warning(s)"), "{out}");
}

#[test]
fn sound_only_mode_reports_more() {
    // ConnectBot's two harmful pairs survive either way; compare on the
    // figure-4-style app where the unsound tier prunes.
    let full = run(&parse_args(vec!["analyze".into(), app("connectbot.dsl")]).unwrap()).unwrap();
    let sound = run(&parse_args(vec![
        "analyze".into(),
        app("connectbot.dsl"),
        "--sound-only".into(),
    ])
    .unwrap())
    .unwrap();
    assert!(full.contains("-> 2 reported"));
    assert!(sound.contains("-> 2 reported"));
}
