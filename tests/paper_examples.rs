//! End-to-end integration tests on the paper's running examples:
//! Figure 1 (the three harmful UAFs), Figure 4 (the seven filter
//! examples), and the Table 3 DEvA comparison behaviours.

use nadroid::core::{analyze, AnalysisConfig, PairType};
use nadroid::corpus::paper;
use nadroid::deva::run_deva;
use nadroid::dynamic::ExploreConfig;
use nadroid::filters::FilterKind;

#[test]
fn figure1_connectbot_finds_and_confirms_both_uafs() {
    let program = paper::connectbot();
    let analysis = analyze(&program, &AnalysisConfig::default());
    let s = analysis.summary();
    assert_eq!(s.after_unsound, 2, "bound (EC-PC) and hostBridge (PC-PC)");

    let rendered = analysis.rendered_survivors();
    let types: Vec<PairType> = rendered.iter().map(|r| r.pair_type).collect();
    assert!(types.contains(&PairType::EcPc));
    assert!(types.contains(&PairType::PcPc));

    let v = analysis.validate_survivors(ExploreConfig::default());
    assert_eq!(v.harmful(), 2, "both UAFs have NPE witnesses");
    assert!(v.false_positives.is_empty());
}

#[test]
fn figure1_firefox_finds_and_confirms_the_thread_uaf() {
    let program = paper::firefox();
    let analysis = analyze(&program, &AnalysisConfig::default());
    assert_eq!(analysis.summary().after_unsound, 1);
    let rendered = analysis.rendered_survivors();
    assert_eq!(rendered[0].pair_type, PairType::CNt);

    let v = analysis.validate_survivors(ExploreConfig::default());
    assert_eq!(v.harmful(), 1);
}

#[test]
fn figure4_gallery_is_fully_filtered() {
    let program = paper::figure4_gallery();
    let analysis = analyze(&program, &AnalysisConfig::default());
    let s = analysis.summary();
    assert_eq!(s.potential, 7, "one pair per example (a)-(g)");
    assert_eq!(s.after_unsound, 0, "all seven are pruned");

    // Attribution: the sound filters take (a), (b), (c); the unsound
    // ones take (d)-(g).
    assert_eq!(s.after_sound, 4);
    let filters = analysis.filters();
    let mut attributed = std::collections::BTreeMap::new();
    for o in analysis.sound_outcomes() {
        if let Some(f) = o.pruned_by {
            attributed.insert(o.warning.pair(), f);
        }
    }
    for o in analysis.unsound_outcomes() {
        if let Some(f) = o.pruned_by {
            attributed.entry(o.warning.pair()).or_insert(f);
        }
    }
    let mut by_filter: Vec<FilterKind> = attributed.values().copied().collect();
    by_filter.sort();
    by_filter.dedup();
    for expect in [
        FilterKind::Mhb,
        FilterKind::Ig,
        FilterKind::Ia,
        FilterKind::Rhb,
        FilterKind::Chb,
        FilterKind::Phb,
        FilterKind::Ur,
    ] {
        assert!(
            by_filter.contains(&expect),
            "{expect} must claim its example"
        );
    }
    let _ = filters;
}

#[test]
fn figure4_gallery_has_no_feasible_pair() {
    // The sound-filter examples (a)-(c) and the dynamically-safe unsound
    // ones (d)-(g) all have no (use, free) witness.
    let program = paper::figure4_gallery();
    let analysis = analyze(&program, &AnalysisConfig::default());
    for w in analysis.warnings() {
        let witness = nadroid::dynamic::explore(
            &program,
            nadroid::dynamic::Goal::Pair {
                use_instr: w.use_access.instr,
                free_instr: w.free_access.instr,
            },
            ExploreConfig::default(),
        );
        assert!(
            witness.is_none(),
            "gallery pair {} / {} must be benign",
            program.describe_instr(w.use_access.instr),
            program.describe_instr(w.free_access.instr)
        );
    }
}

#[test]
fn table3_deva_misses_figure1_and_overreports_ondestroy() {
    // DEvA misses the cross-class Figure 1 races entirely ...
    for program in [paper::connectbot(), paper::firefox()] {
        let deva = run_deva(&program);
        let analysis = analyze(&program, &AnalysisConfig::default());
        let nadroid_survivors: Vec<_> = analysis.survivors().iter().map(|w| w.pair()).collect();
        for pair in &nadroid_survivors {
            // hostBridge/jClient pairs: DEvA does not report them.
            let deva_has = deva.iter().any(|d| d.pair() == *pair);
            if program.name() == "FireFox" {
                assert!(!deva_has, "DEvA cannot see the thread-side free");
            }
        }
    }
    // ... while flagging lifecycle-ordered onDestroy anomalies that
    // nAdroid's MHB filter prunes.
    let music = paper::table3_music();
    let deva = run_deva(&music);
    assert_eq!(deva.len(), 5, "five onDestroy anomalies in the Music model");
    let analysis = analyze(&music, &AnalysisConfig::default());
    assert_eq!(
        analysis.summary().after_unsound,
        0,
        "nAdroid filters all of them"
    );
    let detected: Vec<_> = analysis.warnings().iter().map(|w| w.pair()).collect();
    for d in &deva {
        assert!(
            detected.contains(&d.pair()),
            "nAdroid detects everything DEvA detects"
        );
    }
}

#[test]
fn lineages_mention_posting_callbacks() {
    let program = paper::connectbot();
    let analysis = analyze(&program, &AnalysisConfig::default());
    let rendered = analysis.rendered_survivors();
    let pcpc = rendered
        .iter()
        .find(|r| r.pair_type == PairType::PcPc)
        .expect("hostBridge");
    assert!(
        pcpc.use_lineage.contains("onClick"),
        "the posted run's lineage goes through onClick: {}",
        pcpc.use_lineage
    );
}

#[test]
fn browser_fragment_case_is_detected_and_mhb_filtered() {
    // Table 3's last row: the paper's prototype could not model the
    // fragment and reported "Not detected"; with fragment support the
    // pair is detected and pruned by the sound MHB-Lifecycle filter —
    // the verdict the paper predicted "with proper implementation".
    let program = paper::browser_fragment();
    let deva = run_deva(&program);
    assert_eq!(deva.len(), 1, "DEvA reports the fragment anomaly");

    let analysis = analyze(&program, &AnalysisConfig::default());
    assert!(
        !analysis.warnings().is_empty(),
        "fragment callbacks are armed and detected"
    );
    assert_eq!(analysis.summary().after_unsound, 0);
    let pruner = analysis.sound_outcomes().iter().find_map(|o| o.pruned_by);
    assert_eq!(pruner, Some(FilterKind::Mhb));
}

#[test]
fn fragment_callbacks_follow_their_own_lifecycle_dynamically() {
    // A harmful fragment UAF (free in onPause, no re-allocation) is
    // witnessable through the fragment's lifecycle automaton.
    let program = nadroid::ir::parse_program(
        r#"
        app F
        activity Host { }
        fragment Frag in Host {
            field f: Frag
            cb onCreate { f = new Frag }
            cb onClick { use f }
            cb onPause { f = null }
        }
        manifest { main Host }
        "#,
    )
    .unwrap();
    let analysis = analyze(&program, &AnalysisConfig::default());
    assert_eq!(analysis.summary().after_unsound, 1);
    let v = analysis.validate_survivors(ExploreConfig::default());
    assert_eq!(v.harmful(), 1, "fragment UAF has an NPE witness");
}
