//! Determinism regression suite: the serve-layer result cache assumes
//! that the same program under the same configuration always produces
//! the byte-identical outcome. Pin that end to end — warning-id sets,
//! filter verdicts, and the rendered provenance document.

use nadroid::core::{analyze, render_provenance_json, AnalysisConfig};
use nadroid::ir::parse_program;
use nadroid::serve::CacheKey;

const CONNECTBOT: &str = include_str!("../apps/connectbot.dsl");

#[test]
fn repeated_analyses_are_byte_identical_in_process() {
    let program = parse_program(CONNECTBOT).expect("parse connectbot");
    let config = AnalysisConfig::default();

    let first = analyze(&program, &config);
    let second = analyze(&program, &config);

    // Warning-id sets: same ids, same order.
    let ids = |a: &nadroid::core::Analysis<'_>| -> Vec<String> {
        a.warning_provenances().iter().map(|p| p.id.clone()).collect()
    };
    let first_ids = ids(&first);
    assert!(!first_ids.is_empty(), "connectbot plants warnings");
    assert_eq!(first_ids, ids(&second), "warning ids drift across runs");

    // Filter verdicts: every (id, pruned_by, audit verdict) triple.
    let verdicts = |a: &nadroid::core::Analysis<'_>| -> Vec<String> {
        a.warning_provenances()
            .iter()
            .map(|p| {
                let audit: Vec<String> = p
                    .audit
                    .iter()
                    .map(|v| format!("{:?}:{}:{}", v.kind, v.pruned, v.evidence))
                    .collect();
                format!("{} {:?} [{}]", p.id, p.pruned_by, audit.join(", "))
            })
            .collect()
    };
    assert_eq!(verdicts(&first), verdicts(&second), "filter verdicts drift");

    // The full provenance document — what the serve cache stores.
    assert_eq!(
        render_provenance_json(&first),
        render_provenance_json(&second),
        "provenance rendering drifts"
    );

    // And therefore the cache key is stable too.
    assert_eq!(
        CacheKey::of(CONNECTBOT, &config),
        CacheKey::of(CONNECTBOT, &config)
    );
}

/// The parallel analysis core's headline claim: thread count is
/// invisible in the output. Sweep 1/2/4/8 on an app big enough to cross
/// every parallel gate (K-9's ~213 planted clusters drive the chunked
/// detector scan, the filter pipeline, the points-to epoch planner, and
/// the Datalog delta threshold) and require byte-identical warning ids,
/// filter verdicts, provenance JSON, and deterministic counters.
#[test]
fn thread_count_never_changes_the_output() {
    let rows = nadroid::corpus::table1_rows();
    let row = rows.iter().find(|r| r.name == "K-9").expect("K-9 row");
    let app = nadroid::corpus::generate(&nadroid::corpus::spec_for(row));

    let run = |threads: usize| {
        let config = AnalysisConfig {
            threads,
            datalog_crosscheck: true,
            ..AnalysisConfig::default()
        };
        let recorder = nadroid::obs::Recorder::new();
        let (ids, verdicts, provenance, summary) = {
            let _guard = recorder.install();
            let analysis = analyze(&app.program, &config);
            let provs = analysis.warning_provenances();
            let ids: Vec<String> = provs.iter().map(|p| p.id.clone()).collect();
            let verdicts: Vec<String> = provs
                .iter()
                .map(|p| format!("{} {:?}", p.id, p.pruned_by))
                .collect();
            (
                ids,
                verdicts,
                render_provenance_json(&analysis),
                analysis.summary(),
            )
        };
        let counters = (
            recorder.counter_value("detector.pairs_examined"),
            recorder.counter_value("pointsto.queue_pops"),
        );
        (ids, verdicts, provenance, summary, counters)
    };

    let baseline = run(1);
    assert!(!baseline.0.is_empty(), "K-9 plants warnings");
    assert!(baseline.4 .0 > 0, "pairs_examined recorded");
    assert!(baseline.4 .1 > 0, "queue_pops recorded");
    for threads in [2usize, 4, 8] {
        let swept = run(threads);
        assert_eq!(baseline.0, swept.0, "warning ids drift at threads={threads}");
        assert_eq!(baseline.1, swept.1, "verdicts drift at threads={threads}");
        assert_eq!(
            baseline.2, swept.2,
            "provenance JSON drifts at threads={threads}"
        );
        assert_eq!(baseline.3, swept.3, "summary drifts at threads={threads}");
        assert_eq!(
            baseline.4, swept.4,
            "deterministic counters drift at threads={threads}"
        );
    }
}

/// The serve cache canonicalizes the thread count out of its key: a
/// result computed at one `--threads` must hit for any other.
#[test]
fn cache_keys_ignore_the_thread_count() {
    let one = AnalysisConfig {
        threads: 1,
        ..AnalysisConfig::default()
    };
    let eight = AnalysisConfig {
        threads: 8,
        ..AnalysisConfig::default()
    };
    assert_eq!(
        CacheKey::of(CONNECTBOT, &one),
        CacheKey::of(CONNECTBOT, &eight)
    );
    let k3 = AnalysisConfig {
        k: 3,
        ..AnalysisConfig::default()
    };
    assert_ne!(
        CacheKey::of(CONNECTBOT, &one),
        CacheKey::of(CONNECTBOT, &k3),
        "real config differences must still miss"
    );
}

/// Confirmation rides the same cacheable surface as provenance: the
/// verdicts, minimized witness schedules, explored-state counts, and
/// tallies must be byte-identical across reruns and at every inner
/// thread count. Two subjects: ConnectBot (confirmed verdicts with
/// witness schedules) and the corpus KissLauncher row (unconfirmed
/// verdicts, so the budget-exhaustion path is swept too).
#[test]
fn confirmation_verdicts_and_schedules_are_thread_invariant() {
    use nadroid::confirm::{confirm_survivors, render_confirm_json, ConfirmConfig};

    let connectbot = parse_program(CONNECTBOT).expect("parse connectbot");
    let rows = nadroid::corpus::table1_rows();
    let kiss = rows
        .iter()
        .find(|r| r.name == "KissLauncher")
        .expect("KissLauncher row");
    let kiss_app = nadroid::corpus::generate(&nadroid::corpus::spec_for(kiss));
    let cfg = ConfirmConfig::default();

    let run = |program: &nadroid::ir::Program, threads: usize| {
        nadroid::par::with_threads(threads, || {
            let config = AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            };
            let analysis = analyze(program, &config);
            let outcome = confirm_survivors(&analysis, &cfg);
            let tally = (
                outcome.tally.confirmed,
                outcome.tally.unconfirmed,
                outcome.tally.infeasible,
            );
            (tally, render_confirm_json(&analysis, &outcome))
        })
    };

    let cb_base = run(&connectbot, 1);
    assert!(cb_base.0 .0 >= 1, "connectbot confirms at least one warning");
    assert!(cb_base.1.contains("\"schedule\": \""), "witness attached");
    let kiss_base = run(&kiss_app.program, 1);
    assert!(
        kiss_base.0 .1 >= 1,
        "kisslauncher exercises the unconfirmed path"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            cb_base,
            run(&connectbot, threads),
            "connectbot confirmation drifts at threads={threads}"
        );
        assert_eq!(
            kiss_base,
            run(&kiss_app.program, threads),
            "kisslauncher confirmation drifts at threads={threads}"
        );
    }
    // And a plain rerun at the baseline thread count.
    assert_eq!(cb_base, run(&connectbot, 1), "confirmation drifts on rerun");
}

#[test]
fn summaries_and_survivors_are_stable_across_configs() {
    let program = parse_program(CONNECTBOT).expect("parse connectbot");
    for k in [1u32, 2, 3] {
        let config = AnalysisConfig {
            k,
            ..AnalysisConfig::default()
        };
        let a = analyze(&program, &config);
        let b = analyze(&program, &config);
        assert_eq!(a.summary(), b.summary(), "summary drift at k={k}");
        assert_eq!(
            a.rendered_survivors(),
            b.rendered_survivors(),
            "survivor drift at k={k}"
        );
    }
}
