//! Determinism regression suite: the serve-layer result cache assumes
//! that the same program under the same configuration always produces
//! the byte-identical outcome. Pin that end to end — warning-id sets,
//! filter verdicts, and the rendered provenance document.

use nadroid::core::{analyze, render_provenance_json, AnalysisConfig};
use nadroid::ir::parse_program;
use nadroid::serve::CacheKey;

const CONNECTBOT: &str = include_str!("../apps/connectbot.dsl");

#[test]
fn repeated_analyses_are_byte_identical_in_process() {
    let program = parse_program(CONNECTBOT).expect("parse connectbot");
    let config = AnalysisConfig::default();

    let first = analyze(&program, &config);
    let second = analyze(&program, &config);

    // Warning-id sets: same ids, same order.
    let ids = |a: &nadroid::core::Analysis<'_>| -> Vec<String> {
        a.warning_provenances().iter().map(|p| p.id.clone()).collect()
    };
    let first_ids = ids(&first);
    assert!(!first_ids.is_empty(), "connectbot plants warnings");
    assert_eq!(first_ids, ids(&second), "warning ids drift across runs");

    // Filter verdicts: every (id, pruned_by, audit verdict) triple.
    let verdicts = |a: &nadroid::core::Analysis<'_>| -> Vec<String> {
        a.warning_provenances()
            .iter()
            .map(|p| {
                let audit: Vec<String> = p
                    .audit
                    .iter()
                    .map(|v| format!("{:?}:{}:{}", v.kind, v.pruned, v.evidence))
                    .collect();
                format!("{} {:?} [{}]", p.id, p.pruned_by, audit.join(", "))
            })
            .collect()
    };
    assert_eq!(verdicts(&first), verdicts(&second), "filter verdicts drift");

    // The full provenance document — what the serve cache stores.
    assert_eq!(
        render_provenance_json(&first),
        render_provenance_json(&second),
        "provenance rendering drifts"
    );

    // And therefore the cache key is stable too.
    assert_eq!(
        CacheKey::of(CONNECTBOT, &config),
        CacheKey::of(CONNECTBOT, &config)
    );
}

#[test]
fn summaries_and_survivors_are_stable_across_configs() {
    let program = parse_program(CONNECTBOT).expect("parse connectbot");
    for k in [1u32, 2, 3] {
        let config = AnalysisConfig {
            k,
            ..AnalysisConfig::default()
        };
        let a = analyze(&program, &config);
        let b = analyze(&program, &config);
        assert_eq!(a.summary(), b.summary(), "summary drift at k={k}");
        assert_eq!(
            a.rendered_survivors(),
            b.rendered_survivors(),
            "survivor drift at k={k}"
        );
    }
}
