//! Cross-crate property tests.
//!
//! The generator gives us an unbounded family of well-formed Android app
//! models, which makes it a natural proptest strategy: every invariant
//! here is checked against randomly composed apps.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::corpus::{generate, AppSpec, PatternKind};
use nadroid::dynamic::{explore, ExploreConfig, Goal};
use nadroid::ir::{parse_program, print_program};
use nadroid::pointsto::{datalog_baseline, AllocKey, PointsTo};
use nadroid::threadify::ThreadModel;
use proptest::prelude::*;

/// Strategy: a random multiset of patterns (small, to keep the dynamic
/// checks tractable).
fn spec_strategy(max_per_kind: usize) -> impl Strategy<Value = AppSpec> {
    let kinds = PatternKind::all();
    (
        proptest::collection::vec(0..=max_per_kind, kinds.len()),
        any::<u64>(),
    )
        .prop_map(move |(counts, seed)| {
            let mut spec = AppSpec::new("Prop", seed);
            for (i, &n) in counts.iter().enumerate() {
                spec = spec.with(kinds[i], n);
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The printer emits exactly the canonical DSL the parser accepts,
    /// and parsing it back reproduces the program.
    #[test]
    fn parse_print_round_trips(spec in spec_strategy(2)) {
        let app = generate(&spec);
        let printed = print_program(&app.program);
        let reparsed = parse_program(&printed).expect("canonical form parses");
        prop_assert_eq!(&app.program, &reparsed);
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    /// The analysis pipeline is deterministic.
    #[test]
    fn analysis_is_deterministic(spec in spec_strategy(1)) {
        let app = generate(&spec);
        let a = analyze(&app.program, &AnalysisConfig::default());
        let b = analyze(&app.program, &AnalysisConfig::default());
        prop_assert_eq!(a.summary(), b.summary());
        prop_assert_eq!(a.warnings(), b.warnings());
    }

    /// The context-sensitive worklist solver at k = 0 agrees with the
    /// Datalog baseline on every variable of every generated program.
    #[test]
    fn solver_matches_datalog_baseline(spec in spec_strategy(1)) {
        let app = generate(&spec);
        let threads = ThreadModel::build(&app.program);
        let pts = PointsTo::run(&app.program, &threads, 0);
        let baseline = datalog_baseline(&app.program, &threads);
        for (mid, m) in app.program.methods() {
            for l in 0..m.num_locals() {
                let local = nadroid::ir::Local(l);
                let solver_keys: std::collections::BTreeSet<AllocKey> =
                    pts.pts(mid, local).iter().map(|&o| pts.objs().key(o)).collect();
                let base_keys = baseline.get(&(mid, local)).cloned().unwrap_or_default();
                prop_assert_eq!(solver_keys, base_keys);
            }
        }
    }

    /// The points-to fixpoint under the parallel epoch planner equals
    /// the sequential solve exactly — same sets *and* same deterministic
    /// solver trace (queue pops), on every generated program. The
    /// ambient thread budget is what flips the planner on; nothing else
    /// in the solve changes.
    #[test]
    fn parallel_pointsto_fixpoint_equals_sequential(spec in spec_strategy(2), k in 0u32..=2) {
        let app = generate(&spec);
        let threads = ThreadModel::build(&app.program);
        let solve = |budget: usize| {
            let recorder = nadroid::obs::Recorder::new();
            let pts = {
                let _guard = recorder.install();
                nadroid::par::with_threads(budget, || PointsTo::run(&app.program, &threads, k))
            };
            (pts, recorder.counter_value("pointsto.queue_pops"))
        };
        let (seq, seq_pops) = solve(1);
        let (par, par_pops) = solve(4);
        prop_assert_eq!(seq_pops, par_pops, "solver trace diverged");
        for (mid, m) in app.program.methods() {
            for l in 0..m.num_locals() {
                let local = nadroid::ir::Local(l);
                prop_assert_eq!(seq.pts(mid, local), par.pts(mid, local), "pts diverged");
            }
        }
    }

    /// Raising k never *adds* warning pairs (sensitivity only refines).
    #[test]
    fn sensitivity_is_monotone(spec in spec_strategy(1)) {
        let app = generate(&spec);
        let k0 = analyze(&app.program, &AnalysisConfig { k: 0, ..Default::default() });
        let k2 = analyze(&app.program, &AnalysisConfig::default());
        prop_assert!(k2.summary().potential <= k0.summary().potential);
    }

    /// The predicate-extended closure `predHb` is still a strict partial
    /// order — irreflexive, transitive, and a superset of `must_hb` —
    /// and the negative relation `mustNotHb` never intersects it, at
    /// every thread budget. The refutation filter is only sound if both
    /// invariants hold, so they are checked on randomly composed apps
    /// (the pattern pool includes the `Refute*` kinds, which plant
    /// enabling/disabling pairs, fragments, and task-stack launches).
    #[test]
    fn pred_hb_is_a_strict_partial_order_disjoint_from_must_not_hb(spec in spec_strategy(2)) {
        let app = generate(&spec);
        let threads = ThreadModel::build(&app.program);
        for budget in [1usize, 2, 4, 8] {
            let g = nadroid::par::with_threads(budget, || {
                nadroid::hb::HbGraph::build(&app.program, &threads)
            });
            let ids: Vec<_> = threads.threads().map(|(id, _)| id).collect();
            for &a in &ids {
                prop_assert!(!g.pred_must_hb(a, a), "predHb must be irreflexive (K={budget})");
                for &b in &ids {
                    if g.must_hb(a, b) {
                        prop_assert!(
                            g.pred_must_hb(a, b),
                            "predHb must contain must_hb (K={budget})"
                        );
                    }
                    if g.pred_must_hb(a, b) {
                        prop_assert!(
                            !g.pred_must_hb(b, a),
                            "predHb must be asymmetric (K={budget})"
                        );
                    }
                    prop_assert!(
                        !(g.must_not_hb(a, b) && g.pred_must_hb(a, b)),
                        "mustNotHb and predHb (hence mustHb) must be disjoint (K={budget})"
                    );
                    for &c in &ids {
                        if g.pred_must_hb(a, b) && g.pred_must_hb(b, c) {
                            prop_assert!(
                                g.pred_must_hb(a, c),
                                "predHb must be transitive (K={budget})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// `must_hb` is a strict partial order — irreflexive and transitive —
    /// and `mhp` is exactly its symmetric complement: two distinct
    /// threads may happen in parallel iff neither is must-ordered before
    /// the other, so the two relations never overlap.
    #[test]
    fn must_hb_is_a_strict_partial_order_disjoint_from_mhp(spec in spec_strategy(2)) {
        let app = generate(&spec);
        let threads = ThreadModel::build(&app.program);
        let g = nadroid::hb::HbGraph::build(&app.program, &threads);
        let ids: Vec<_> = threads.threads().map(|(id, _)| id).collect();
        for &a in &ids {
            prop_assert!(!g.must_hb(a, a), "must_hb must be irreflexive");
            prop_assert!(!g.mhp(a, a), "a thread never races itself");
            for &b in &ids {
                if g.mhp(a, b) {
                    prop_assert!(g.mhp(b, a), "mhp is symmetric");
                    prop_assert!(
                        !g.must_hb(a, b) && !g.must_hb(b, a),
                        "mhp and must_hb are disjoint"
                    );
                } else if a != b {
                    prop_assert!(
                        g.must_hb(a, b) || g.must_hb(b, a),
                        "non-mhp distinct threads are must-ordered"
                    );
                }
                for &c in &ids {
                    if g.must_hb(a, b) && g.must_hb(b, c) {
                        prop_assert!(g.must_hb(a, c), "must_hb is transitive");
                    }
                }
            }
        }
    }
}

proptest! {
    // Dynamic exploration is expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Soundness of the sound filters (the paper's central claim): no
    /// pair pruned by MHB/IG/IA has an NPE witness under the
    /// Android-semantics interpreter.
    #[test]
    fn sound_filters_never_prune_feasible_pairs(
        seed in any::<u64>(),
        mhb in 0usize..=1,
        ig in 0usize..=1,
        ia in 0usize..=1,
        harmful in 0usize..=1,
    ) {
        let spec = AppSpec::new("Sound", seed)
            .with(PatternKind::Mhb, mhb)
            .with(PatternKind::Ig, ig)
            .with(PatternKind::Ia, ia)
            .with(PatternKind::HarmfulEcPc, harmful);
        let app = generate(&spec);
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        for outcome in analysis.sound_outcomes() {
            let Some(f) = outcome.pruned_by else { continue };
            prop_assert!(f.is_sound());
            let w = &outcome.warning;
            let witness = explore(
                &app.program,
                Goal::Pair { use_instr: w.use_access.instr, free_instr: w.free_access.instr },
                ExploreConfig::default(),
            );
            prop_assert!(witness.is_none(), "sound filter {f} pruned a feasible pair");
        }
    }
}
