//! Golden parity for the happens-before rewire: the `HbGraph`-backed
//! filters must reproduce the legacy per-filter logic *exactly* across
//! the whole 27-app Table 1 corpus — same Figure 5 tallies (rendered and
//! compared byte-for-byte), same surviving warning ids, same verdict on
//! every (warning, filter) pair. This is the CI gate that lets the
//! legacy code paths eventually retire.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::corpus::{generate, spec_for, table1_rows};
use nadroid::detector::{warning_id, UafWarning};
use nadroid::filters::{tally_outcomes, FilterKind, FilterOutcome, Filters};

/// Re-run a filter tier the way `Filters::pipeline` does, but with every
/// verdict answered by the legacy (pre-`HbGraph`) logic.
fn legacy_outcomes(
    filters: &Filters<'_>,
    warnings: &[UafWarning],
    kinds: &[FilterKind],
) -> Vec<FilterOutcome> {
    warnings
        .iter()
        .map(|w| {
            let all_pruning: Vec<FilterKind> = kinds
                .iter()
                .copied()
                .filter(|&k| filters.legacy_prunes(k, w))
                .collect();
            FilterOutcome {
                warning: w.clone(),
                pruned_by: all_pruning.first().copied(),
                all_pruning,
            }
        })
        .collect()
}

/// The predicate layer must be inert on the paper corpus: no Table 1
/// app calls a *disabling* API (no unbind/dismiss/unregister/cancel)
/// and none launches or hosts fragments, so the solved `disables` and
/// `predEdge` relations are empty, the only `enables` facts are the
/// Connection binds the service-lifecycle patterns always contained,
/// the refuter never fires, and running with the refutation stage
/// disabled renders the byte-identical report — the Figure 5 tallies
/// and surviving ids pinned by the other gates cannot move.
#[test]
fn paper_apps_have_no_predicate_facts_and_refutation_is_a_no_op() {
    let on = AnalysisConfig::default();
    let off = AnalysisConfig {
        refutation: false,
        ..AnalysisConfig::default()
    };
    for row in table1_rows() {
        let app = generate(&spec_for(&row));
        let analysis = analyze(&app.program, &on);
        let hb = analysis.hb();
        assert_eq!(
            hb.disables_count(),
            0,
            "{}: disables must be empty on the paper corpus",
            row.name
        );
        assert!(
            hb.pred_edges().is_empty(),
            "{}: no fragment or task-stack predicate edges on the paper corpus",
            row.name
        );
        for (e, c, site) in hb.enables_facts() {
            assert_eq!(
                site.api, "Context.bindService()",
                "{}: unexpected enabling API for enables({e:?}, {c:?})",
                row.name
            );
        }
        assert!(
            analysis.refutations().is_empty(),
            "{}: nothing to refute without predicate facts",
            row.name
        );
        let s = analysis.summary();
        assert_eq!(s.refuted, 0, "{}", row.name);
        assert_eq!(s.after_refutation, s.after_unsound, "{}", row.name);
        let baseline = analyze(&app.program, &off);
        assert_eq!(
            nadroid::core::render_report(&analysis, None),
            nadroid::core::render_report(&baseline, None),
            "{}: the refutation stage must not perturb the paper corpus",
            row.name
        );
    }
}

#[test]
fn hb_backed_filters_match_legacy_logic_on_all_27_apps() {
    let cfg = AnalysisConfig::default();
    for row in table1_rows() {
        let app = generate(&spec_for(&row));
        let analysis = analyze(&app.program, &cfg);
        // Crosscheck mode asserts graph-vs-legacy agreement inside every
        // `prunes` call on top of the explicit comparisons below.
        let filters = analysis.filters().with_crosscheck(true);

        // Every (warning, filter) verdict, pointwise.
        for w in analysis.warnings() {
            for &k in FilterKind::all() {
                assert_eq!(
                    filters.prunes(k, w),
                    filters.legacy_prunes(k, w),
                    "{}: {k} disagrees on pair {:?}",
                    row.name,
                    w.pair()
                );
            }
        }

        // Figure 5 sound tallies, byte-identical.
        let legacy_sound = legacy_outcomes(&filters, analysis.warnings(), &cfg.sound_filters);
        assert_eq!(
            format!("{:?}", tally_outcomes(analysis.sound_outcomes(), &cfg.sound_filters)),
            format!("{:?}", tally_outcomes(&legacy_sound, &cfg.sound_filters)),
            "{}: sound Figure 5 tallies",
            row.name
        );

        // Figure 5 unsound tallies over the sound survivors.
        let legacy_survivors: Vec<UafWarning> = legacy_sound
            .iter()
            .filter(|o| o.survives())
            .map(|o| o.warning.clone())
            .collect();
        let legacy_unsound = legacy_outcomes(&filters, &legacy_survivors, &cfg.unsound_filters);
        assert_eq!(
            format!(
                "{:?}",
                tally_outcomes(analysis.unsound_outcomes(), &cfg.unsound_filters)
            ),
            format!("{:?}", tally_outcomes(&legacy_unsound, &cfg.unsound_filters)),
            "{}: unsound Figure 5 tallies",
            row.name
        );

        // Surviving warning ids, in order.
        let ids: Vec<String> = analysis
            .survivors()
            .iter()
            .map(|w| warning_id(&app.program, analysis.threads(), w))
            .collect();
        let legacy_ids: Vec<String> = legacy_unsound
            .iter()
            .filter(|o| o.survives())
            .map(|o| warning_id(&app.program, analysis.threads(), &o.warning))
            .collect();
        assert_eq!(ids, legacy_ids, "{}: surviving warning ids", row.name);
    }
}
