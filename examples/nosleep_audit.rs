//! The §9 energy-bug client: audit an app for no-sleep (wake-lock)
//! ordering violations, statically and dynamically.
//!
//! Run with `cargo run --example nosleep_audit`.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::dynamic::{explore_no_sleep, ExploreConfig};
use nadroid::ir::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The classic no-sleep race (Pathak et al.): a download activity
    // acquires the lock in onResume and releases in onPause — but also
    // acquires in a background thread it never balances.
    let program = parse_program(
        r#"
        app Downloader
        activity DownloadActivity {
            field wl: WakeLock
            cb onCreate { wl = new WakeLock }
            cb onResume {
                t1 = load this DownloadActivity.wl
                acquire t1
                spawn Worker
            }
            cb onPause {
                t1 = load this DownloadActivity.wl
                release t1
            }
        }
        thread Worker in DownloadActivity {
            cb run {
                t1 = load this Worker.$outer
                t2 = load t1 DownloadActivity.wl
                acquire t2
            }
        }
        class WakeLock { }
        manifest { main DownloadActivity }
        "#,
    )?;

    let analysis = analyze(&program, &AnalysisConfig::default());
    let warnings = analysis.no_sleep_warnings();
    println!("{} no-sleep warning(s):", warnings.len());
    for w in &warnings {
        println!(
            "  acquire at {} — {}",
            program.describe_instr(w.acquire.instr),
            if w.unordered_releases.is_empty() {
                "no release anywhere".to_owned()
            } else {
                format!(
                    "only unordered (racy) releases: {}",
                    w.unordered_releases
                        .iter()
                        .map(|r| program.describe_instr(r.instr))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        );
    }

    // Dynamic confirmation: a schedule that backgrounds the app with the
    // lock still held.
    match explore_no_sleep(&program, ExploreConfig::default()) {
        Some(trace) => {
            println!("\nno-sleep witness schedule:");
            for line in &trace {
                println!("  {line}");
            }
        }
        None => println!("\nno dynamic witness within bounds"),
    }
    Ok(())
}
