//! Quickstart: author a tiny Android app model in the DSL, run the full
//! nAdroid pipeline, and print the surviving warnings.
//!
//! Run with `cargo run --example quickstart`.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::dynamic::ExploreConfig;
use nadroid::ir::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A minimal app with the classic service-disconnect UAF: the context
    // menu uses `bound` without ensuring the service is still connected.
    let program = parse_program(
        r#"
        app Quickstart
        activity Console {
            field bound: Manager
            cb onCreate { bind this }
            cb onServiceConnected    { bound = new Manager }
            cb onServiceDisconnected { bound = null }
            cb onCreateContextMenu   { use bound }
        }
        class Manager { }
        manifest { main Console }
        "#,
    )?;

    // Threadification -> detection -> filtering (Figure 2 of the paper).
    let analysis = analyze(&program, &AnalysisConfig::default());
    let s = analysis.summary();
    println!("LOC={} EC={} PC={} T={}", s.loc, s.ec, s.pc, s.threads);
    println!(
        "potential UAF pairs: {}  after sound filters: {}  after unsound filters: {}",
        s.potential, s.after_sound, s.after_unsound
    );

    // The §7 report: pair type plus callback/thread lineage.
    for w in analysis.rendered_survivors() {
        println!(
            "warning [{}] {}: use {} ({}) / free {} ({})",
            w.pair_type, w.field, w.use_site, w.use_lineage, w.free_site, w.free_lineage
        );
    }

    // Dynamic confirmation: search schedules for a NullPointerException
    // caused by exactly this (use, free) pair.
    let validation = analysis.validate_survivors(ExploreConfig::default());
    println!("confirmed harmful: {}", validation.harmful());
    for (w, witness) in &validation.confirmed {
        println!(
            "witness for {} / {}:",
            program.describe_instr(w.use_access.instr),
            program.describe_instr(w.free_access.instr)
        );
        for line in &witness.trace {
            println!("  {line}");
        }
    }
    Ok(())
}
