//! Audit the paper's motivating application models (Figure 1): the
//! ConnectBot service-disconnect UAFs and the FireFox thread UAF —
//! detection, filtering, ranking, DEvA comparison, and dynamic witnesses.
//!
//! Run with `cargo run --example connectbot_audit`.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::corpus::paper;
use nadroid::deva::run_deva;
use nadroid::dynamic::ExploreConfig;

fn main() {
    for program in [paper::connectbot(), paper::firefox()] {
        println!("===== {} =====", program.name());
        let analysis = analyze(&program, &AnalysisConfig::default());
        let s = analysis.summary();
        println!(
            "pipeline: {} potential -> {} after sound -> {} after unsound",
            s.potential, s.after_sound, s.after_unsound
        );

        println!("ranked report (§7: PC- and NT-involved pairs first):");
        for w in analysis.rendered_survivors() {
            println!("  [{}] {}", w.pair_type, w.field);
            println!("      use : {}  via {}", w.use_site, w.use_lineage);
            println!("      free: {}  via {}", w.free_site, w.free_lineage);
        }

        // The state-of-the-art baseline misses the cross-class races.
        let deva = run_deva(&program);
        println!(
            "DEvA finds {} warning(s) here (limitations: intra-class scope, no threads)",
            deva.len()
        );

        // Dynamic confirmation (§7, automated).
        let v = analysis.validate_survivors(ExploreConfig::default());
        println!(
            "dynamic validation: {}/{} confirmed harmful",
            v.harmful(),
            s.after_unsound
        );
        for (w, witness) in &v.confirmed {
            println!(
                "  schedule for {} / {} ({} states):",
                program.describe_instr(w.use_access.instr),
                program.describe_instr(w.free_access.instr),
                witness.states_explored
            );
            for line in &witness.trace {
                println!("    {line}");
            }
        }
        println!();
    }
}
