//! Serve round trip: start the analysis service on an ephemeral port,
//! submit the ConnectBot model twice, and print the stable warning ids
//! — the second request is answered from the content-addressed cache.
//!
//! Run with `cargo run --example serve_roundtrip`.

use nadroid::serve::client::Client;
use nadroid::serve::protocol::{AnalyzeOpts, Response};
use nadroid::serve::server::{ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0 = ephemeral: no collisions, works anywhere.
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    let program = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/apps/connectbot.dsl"
    ))?;
    let mut client = Client::connect(addr)?;

    for round in ["cold", "warm"] {
        match client.analyze(&program, AnalyzeOpts::default()) {
            Ok(Response::Analyze {
                app,
                cached,
                micros,
                summary,
                warnings,
            }) => {
                println!(
                    "{round}: {app} in {micros} us (cached: {cached}) — \
                     {} survivors of {} potential pairs",
                    summary.after_unsound, summary.potential
                );
                for id in &warnings {
                    println!("  {id}");
                }
            }
            other => return Err(format!("unexpected response: {other:?}").into()),
        }
    }

    // `explain` is served from the cached provenance — no re-solve.
    if let Ok(Response::Explain { cached, text, .. }) =
        client.explain(&program, None, AnalyzeOpts::default())
    {
        assert!(cached, "explain after analyze reuses cached provenance");
        let first_line = text.lines().next().unwrap_or("");
        println!("explain (from cache): {first_line} ...");
    }

    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server.run_until_shutdown();
    Ok(())
}
