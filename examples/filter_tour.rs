//! A guided tour of the §6 filters on the Figure 4 gallery: each of the
//! seven examples is pruned by exactly the filter the paper names, and
//! the tour shows which other filters would also have caught it.
//!
//! Run with `cargo run --example filter_tour`.

use nadroid::core::{analyze, AnalysisConfig};
use nadroid::corpus::paper;
use nadroid::filters::FilterKind;

fn main() {
    let program = paper::figure4_gallery();
    let analysis = analyze(&program, &AnalysisConfig::default());
    println!(
        "Figure 4 gallery: {} potential pairs, {} survive all filters",
        analysis.summary().potential,
        analysis.summary().after_unsound
    );
    println!();

    let filters = analysis.filters();
    // Distinct pairs with their individually-matching filters.
    let mut seen = Vec::new();
    for w in analysis.warnings() {
        if seen.contains(&w.pair()) {
            continue;
        }
        seen.push(w.pair());
        let matching: Vec<String> = FilterKind::all()
            .iter()
            .filter(|&&k| filters.prunes(k, w))
            .map(|k| {
                format!(
                    "{k}{}",
                    if k.is_sound() {
                        " (sound)"
                    } else {
                        " (unsound)"
                    }
                )
            })
            .collect();
        println!(
            "pair {} / {}",
            program.describe_instr(w.use_access.instr),
            program.describe_instr(w.free_access.instr)
        );
        if matching.is_empty() {
            println!("    survives every filter — reported to the programmer");
        } else {
            println!("    pruned by: {}", matching.join(", "));
        }
    }

    println!();
    println!("sound filters: {:?}", FilterKind::sound());
    println!(
        "unsound filters (ranking tier): {:?}",
        FilterKind::unsound()
    );
}
