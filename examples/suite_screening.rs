//! Screen a fleet of applications: run the pipeline over the whole
//! 27-app evaluation suite and triage the findings by the §7 ranking
//! hypotheses (PC- and NT-involved pairs first).
//!
//! Run with `cargo run --release --example suite_screening`.

use nadroid::core::{analyze, rank_key, AnalysisConfig};
use nadroid::corpus::{generate, spec_for, table1_rows};

fn main() {
    let mut triage = Vec::new();
    for row in table1_rows() {
        let app = generate(&spec_for(&row));
        let analysis = analyze(&app.program, &AnalysisConfig::default());
        let s = analysis.summary();
        if s.after_unsound == 0 {
            continue;
        }
        for w in analysis.rendered_survivors() {
            triage.push((row.name, w));
        }
        println!(
            "{:>14}: {:>4} potential, {:>3} after filters",
            row.name, s.potential, s.after_unsound
        );
    }

    triage.sort_by_key(|(_, w)| rank_key(w.pair_type));
    println!();
    println!("top findings across the fleet (highest-risk pair types first):");
    for (app, w) in triage.iter().take(15) {
        println!(
            "  [{:5}] {:>12}: {} — use {}, free {}",
            w.pair_type, app, w.field, w.use_site, w.free_site
        );
    }
    println!("({} findings total)", triage.len());
}
