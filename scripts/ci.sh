#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/ci.sh
#
# 1. release build of the whole workspace (benches compile too),
# 2. the full test suite,
# 3. clippy with warnings promoted to errors,
# 4. the observability crate builds (and its tests run) with
#    instrumentation compiled out (--no-default-features), and the
#    Datalog engine builds with provenance recording compiled out,
# 5. provenance smoke test: `nadroid explain` on a corpus app must
#    produce a non-empty derivation tree and a filter audit,
# 6. bench-regression guard: re-measure the timing suite and compare
#    against the committed BENCH_timing.json with a 3x tolerance — a
#    perf cliff (or a change to the deterministic Datalog closure
#    workload) fails the gate loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

cargo build -p nadroid-obs --no-default-features
cargo test -q -p nadroid-obs --no-default-features
cargo build -p nadroid-datalog --no-default-features

explain_out=$(cargo run --release -q -p nadroid-cli --bin nadroid -- explain apps/connectbot.dsl)
echo "$explain_out" | grep -q 'racyPair(' || {
    echo "ci.sh: explain produced no derivation tree" >&2; exit 1; }
echo "$explain_out" | grep -q '(base fact)' || {
    echo "ci.sh: explain derivation has no base-fact leaves" >&2; exit 1; }
echo "$explain_out" | grep -q 'filter audit:' || {
    echo "ci.sh: explain produced no filter audit" >&2; exit 1; }

cargo run --release -p nadroid-bench --bin timing -- --check 3

echo "ci.sh: all gates passed"
