#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/ci.sh
#
# 1. release build of the whole workspace (benches compile too),
# 2. the full test suite — run at NADROID_THREADS=4 so every analysis
#    in tier-1 exercises the parallel detection/filtering/points-to/
#    Datalog paths (output is byte-identical by construction; the
#    determinism suites assert it),
# 3. clippy with warnings promoted to errors,
# 4. the observability crate builds (and its tests run) with
#    instrumentation compiled out (--no-default-features), the Datalog
#    engine builds with provenance recording compiled out, the HB
#    graph builds with metrics compiled out, and the work-pool crate
#    builds (and its tests run) with its obs integration compiled out;
#    the HB parity gate then checks graph-backed filters against the
#    legacy logic on all 27 apps,
# 5. provenance smoke test: `nadroid explain` on a corpus app must
#    produce a non-empty derivation tree and a filter audit,
# 6. bench-regression guard: re-measure the timing suite and compare
#    against the committed BENCH_timing.json (nadroid-timing/4) with a
#    3x tolerance, and validate the corpus-scale thread curve
#    structurally (rows for threads 1/2/4/8; deterministic counters
#    identical across the curve) — a perf cliff (or a change to the
#    deterministic Datalog closure workload) fails the gate loudly,
# 7. serve smoke gate: start the daemon with --threads 2 (inner
#    parallelism under admission control), cold request, warm request
#    (must hit the cache), deadline-exceeded request (structured
#    timeout, worker survives), stats consistency incl. the exported
#    thread config, clean shutdown — then the serve load bench
#    refreshes BENCH_serve.json and enforces the 20x warm-vs-cold
#    ConnectBot speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
NADROID_THREADS=4 cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

cargo build -p nadroid-obs --no-default-features
cargo test -q -p nadroid-obs --no-default-features
cargo build -p nadroid-datalog --no-default-features
cargo build -p nadroid-hb --no-default-features
cargo build -p nadroid-par --no-default-features
cargo test -q -p nadroid-par --no-default-features

# HB parity gate: the graph-backed filters must reproduce the legacy
# filter logic byte-for-byte across the whole 27-app corpus.
cargo test -q --release --test hb_parity

explain_out=$(cargo run --release -q -p nadroid-cli --bin nadroid -- explain apps/connectbot.dsl)
echo "$explain_out" | grep -q 'racyPair(' || {
    echo "ci.sh: explain produced no derivation tree" >&2; exit 1; }
echo "$explain_out" | grep -q '(base fact)' || {
    echo "ci.sh: explain derivation has no base-fact leaves" >&2; exit 1; }
echo "$explain_out" | grep -q 'filter audit:' || {
    echo "ci.sh: explain produced no filter audit" >&2; exit 1; }

cargo run --release -p nadroid-bench --bin timing -- --check 3

# --- serve smoke gate ---
bin=target/release/nadroid
serve_out=$(mktemp)
"$bin" serve --addr 127.0.0.1:0 --workers 2 --threads 2 > "$serve_out" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_out"' EXIT
for _ in $(seq 1 100); do
    grep -q 'listening on' "$serve_out" && break
    sleep 0.1
done
serve_addr=$(sed -n 's/.*listening on //p' "$serve_out")
[ -n "$serve_addr" ] || { echo "ci.sh: serve never announced its address" >&2; exit 1; }

"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: false' || {
    echo "ci.sh: cold serve request was not computed" >&2; exit 1; }
"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: true' || {
    echo "ci.sh: warm serve request missed the cache" >&2; exit 1; }
"$bin" request apps/connectbot.dsl --addr "$serve_addr" --k 3 --deadline-ms 0 \
    | grep -q 'deadline exceeded' || {
    echo "ci.sh: zero-deadline request did not time out" >&2; exit 1; }
# The timed-out worker must still serve fresh work.
"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: true' || {
    echo "ci.sh: worker unhealthy after deadline-exceeded request" >&2; exit 1; }
stats_out=$("$bin" request --stats --addr "$serve_addr")
echo "$stats_out" | grep -q '"cache_hits": 2' || {
    echo "ci.sh: serve stats cache_hits inconsistent:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"cache_misses": 2' || {
    echo "ci.sh: serve stats cache_misses inconsistent:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"deadline_exceeded": 1' || {
    echo "ci.sh: serve stats deadline_exceeded inconsistent:"; echo "$stats_out"; exit 1; }
# The requested inner-thread config must be exported verbatim (the
# effective "threads" value is machine-bound — workers x threads is
# clamped to the core budget — so the gate checks the request echo).
echo "$stats_out" | grep -q '"threads_requested": 2' || {
    echo "ci.sh: serve stats missing threads_requested:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"threads": ' || {
    echo "ci.sh: serve stats missing effective threads:"; echo "$stats_out"; exit 1; }
"$bin" request --shutdown --addr "$serve_addr" | grep -q 'shutdown acknowledged' || {
    echo "ci.sh: serve shutdown not acknowledged" >&2; exit 1; }
wait "$serve_pid" || { echo "ci.sh: serve exited nonzero" >&2; exit 1; }
grep -q '"requests": 6' "$serve_out" || {
    echo "ci.sh: serve final stats missing/inconsistent:"; cat "$serve_out"; exit 1; }
trap - EXIT
rm -f "$serve_out"

cargo run --release -p nadroid-bench --bin serve_bench -- --concurrency 2

echo "ci.sh: all gates passed"
