#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/ci.sh
#
# 1. release build of the whole workspace (benches compile too),
# 2. the full test suite,
# 3. clippy with warnings promoted to errors,
# 4. the observability crate builds (and its tests run) with
#    instrumentation compiled out (--no-default-features),
# 5. bench-regression guard: re-measure the timing suite and compare
#    against the committed BENCH_timing.json with a 3x tolerance — a
#    perf cliff (or a change to the deterministic Datalog closure
#    workload) fails the gate loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

cargo build -p nadroid-obs --no-default-features
cargo test -q -p nadroid-obs --no-default-features

cargo run --release -p nadroid-bench --bin timing -- --check 3

echo "ci.sh: all gates passed"
