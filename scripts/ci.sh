#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/ci.sh
#
# 1. release build of the whole workspace (benches compile too),
# 2. the full test suite — run at NADROID_THREADS=4 so every analysis
#    in tier-1 exercises the parallel detection/filtering/points-to/
#    Datalog paths (output is byte-identical by construction; the
#    determinism suites assert it),
# 3. clippy with warnings promoted to errors,
# 4. the observability crate builds (and its tests run) with
#    instrumentation compiled out (--no-default-features), the serve
#    crate builds (and its tests run) with telemetry compiled out, the
#    Datalog engine builds with provenance recording compiled out, the
#    HB graph builds with metrics compiled out, the work-pool crate
#    builds (and its tests run) with its obs integration compiled out,
#    and the confirmation crate builds (and its tests run) with its
#    metrics/cancellation hooks compiled out;
#    the HB parity gate then checks graph-backed filters against the
#    legacy logic on all 27 apps,
# 5. provenance smoke test: `nadroid explain` on a corpus app must
#    produce a non-empty derivation tree and a filter audit; the
#    confirmation smoke then runs `nadroid confirm` on the same app,
#    extracts the first confirmed warning's minimized witness schedule,
#    and replays it in a fresh `nadroid replay` process — the NPE must
#    reproduce and match the warning's use/free sites,
# 6. perf/drift gate: re-measure the timing suite and run
#    `nadroid perf gate` against the committed BENCH_timing.json —
#    deterministic counters and the warning population compare exactly,
#    wall/CPU times under the documented noise budget (3x + 0.25s), and
#    the scale curve's thread-invariant counters are validated
#    structurally during conversion — with the fresh run appended to
#    the run ledger (Result/ledger.jsonl, schema nadroid-ledger/1) as a
#    `ci` record; the verdict names the exact counter, percentile, or
#    warning ids that moved,
# 7. serve smoke gate: start the daemon with --threads 2 (inner
#    parallelism under admission control) plus an access log and a
#    zero slow-capture threshold, cold request, warm request (must hit
#    the cache), deadline-exceeded request (structured timeout, worker
#    survives), stats consistency incl. the exported thread config, a
#    `metrics` request (per-endpoint percentiles, rolling rps windows,
#    Prometheus text rendering), clean shutdown — then the JSONL
#    access log and a slow-request trace must validate under
#    `nadroid check-json`, and the serve load bench refreshes
#    BENCH_serve.json (schema nadroid-serve-bench/3, host fingerprint
#    included) and enforces the 20x warm-vs-cold ConnectBot speedup
#    plus its telemetry-agreement self-checks,
# 8. confirmation drift gate: confirm_bench re-runs dynamic
#    confirmation over the whole corpus (its own self-checks require
#    >=1 confirmed, >=1 infeasible, and every confirmed schedule to
#    replay-verify), refreshes BENCH_confirm.json, appends a `confirm`
#    ledger record, and `nadroid perf gate` compares that record
#    against the committed baseline — verdict tallies, explored-state
#    counts, and per-app confirmed-warning populations are drift-exact,
# 9. refutation drift gate: refute_bench re-runs the predicate
#    refutation study over its dedicated corpus (its self-checks
#    require every planted Refute* cluster to refute with exactly its
#    certified reason and every kept control to survive), refreshes
#    BENCH_refute.json, appends a `refute` ledger record, and
#    `nadroid perf gate` compares it against the committed baseline —
#    the Figure-5-style stage tally, per-reason counts, and per-app
#    surviving populations are drift-exact; the Gallery explain smoke
#    then checks the rendered `refutation:` contradiction chains and
#    pins the provenance sidecar to nadroid-provenance/4,
# 10. schema pins: BENCH_timing.json, BENCH_serve.json,
#    BENCH_confirm.json, BENCH_refute.json, the metrics document, and
#    every Result/ledger.jsonl line must carry their declared schemas
#    (`check-json --expect-schema`).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
NADROID_THREADS=4 cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

cargo build -p nadroid-obs --no-default-features
cargo test -q -p nadroid-obs --no-default-features
cargo build -p nadroid-serve --no-default-features
cargo test -q -p nadroid-serve --no-default-features
cargo build -p nadroid-datalog --no-default-features
cargo build -p nadroid-hb --no-default-features
cargo build -p nadroid-par --no-default-features
cargo test -q -p nadroid-par --no-default-features
cargo build -p nadroid-confirm --no-default-features
cargo test -q -p nadroid-confirm --no-default-features

# HB parity gate: the graph-backed filters must reproduce the legacy
# filter logic byte-for-byte across the whole 27-app corpus.
cargo test -q --release --test hb_parity

explain_out=$(cargo run --release -q -p nadroid-cli --bin nadroid -- explain apps/connectbot.dsl)
echo "$explain_out" | grep -q 'racyPair(' || {
    echo "ci.sh: explain produced no derivation tree" >&2; exit 1; }
echo "$explain_out" | grep -q '(base fact)' || {
    echo "ci.sh: explain derivation has no base-fact leaves" >&2; exit 1; }
echo "$explain_out" | grep -q 'filter audit:' || {
    echo "ci.sh: explain produced no filter audit" >&2; exit 1; }

bin=target/release/nadroid

# --- confirmation smoke gate ---
# `confirm` must manifest at least one ConnectBot warning, and the
# minimized witness schedule it prints must reproduce the NPE in a
# separate `replay` process, matched back to the warning's sites.
confirm_out=$("$bin" confirm apps/connectbot.dsl)
echo "$confirm_out" | grep -q 'verdict: confirmed' || {
    echo "ci.sh: confirm produced no confirmed verdict:"; echo "$confirm_out"; exit 1; }
confirm_id=$(echo "$confirm_out" | sed -n 's/^warning //p' | head -n 1)
confirm_sched=$(echo "$confirm_out" \
    | awk '/witness schedule:/{getline; sub(/^ +/, ""); print; exit}')
[ -n "$confirm_id" ] && [ -n "$confirm_sched" ] || {
    echo "ci.sh: confirm output had no id/schedule to replay:"; echo "$confirm_out"; exit 1; }
replay_out=$("$bin" replay apps/connectbot.dsl "$confirm_sched" --id "$confirm_id")
echo "$replay_out" | grep -q 'NPE reproduced' || {
    echo "ci.sh: witness schedule did not reproduce the NPE:"; echo "$replay_out"; exit 1; }
echo "$replay_out" | grep -q "matches warning $confirm_id" || {
    echo "ci.sh: replayed NPE does not match the warning:"; echo "$replay_out"; exit 1; }

# --- perf/drift gate (replaces the old `timing --check 3`) ---
# Convert the committed BENCH_timing.json to a ledger record (failing
# on structural violations in its scale curve), re-measure the suite,
# and compare under the noise model; the fresh run lands in
# Result/ledger.jsonl as a `ci` record either way.
"$bin" check-json BENCH_timing.json --expect-schema nadroid-timing/4
"$bin" perf gate --against BENCH_timing.json --record

# --- serve smoke gate ---
serve_out=$(mktemp)
telem_dir=$(mktemp -d)
"$bin" serve --addr 127.0.0.1:0 --workers 2 --threads 2 \
    --access-log "$telem_dir/access.jsonl" --slow-us 0 > "$serve_out" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_out"; rm -rf "$telem_dir"' EXIT
for _ in $(seq 1 100); do
    grep -q 'listening on' "$serve_out" && break
    sleep 0.1
done
serve_addr=$(sed -n 's/.*listening on //p' "$serve_out")
[ -n "$serve_addr" ] || { echo "ci.sh: serve never announced its address" >&2; exit 1; }

"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: false' || {
    echo "ci.sh: cold serve request was not computed" >&2; exit 1; }
"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: true' || {
    echo "ci.sh: warm serve request missed the cache" >&2; exit 1; }
"$bin" request apps/connectbot.dsl --addr "$serve_addr" --k 3 --deadline-ms 0 \
    | grep -q 'deadline exceeded' || {
    echo "ci.sh: zero-deadline request did not time out" >&2; exit 1; }
# The timed-out worker must still serve fresh work.
"$bin" request apps/connectbot.dsl --addr "$serve_addr" | grep -q 'cached: true' || {
    echo "ci.sh: worker unhealthy after deadline-exceeded request" >&2; exit 1; }
stats_out=$("$bin" request --stats --addr "$serve_addr")
echo "$stats_out" | grep -q '"cache_hits": 2' || {
    echo "ci.sh: serve stats cache_hits inconsistent:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"cache_misses": 2' || {
    echo "ci.sh: serve stats cache_misses inconsistent:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"deadline_exceeded": 1' || {
    echo "ci.sh: serve stats deadline_exceeded inconsistent:"; echo "$stats_out"; exit 1; }
# The requested inner-thread config must be exported verbatim (the
# effective "threads" value is machine-bound — workers x threads is
# clamped to the core budget — so the gate checks the request echo).
echo "$stats_out" | grep -q '"threads_requested": 2' || {
    echo "ci.sh: serve stats missing threads_requested:"; echo "$stats_out"; exit 1; }
echo "$stats_out" | grep -q '"threads": ' || {
    echo "ci.sh: serve stats missing effective threads:"; echo "$stats_out"; exit 1; }
# Telemetry gate: the metrics op must expose per-endpoint latency
# percentiles, queue-wait, and rolling rps windows — and the document
# must validate under the in-repo JSON parser.
metrics_out=$("$bin" request --metrics --addr "$serve_addr")
for key in '"serve.latency.analyze.miss"' '"serve.queue_wait.analyze"' \
           '"p99_us"' '"rps_1s"' '"error_rate_60s"'; do
    echo "$metrics_out" | grep -qF "$key" || {
        echo "ci.sh: metrics response missing $key:"; echo "$metrics_out"; exit 1; }
done
echo "$metrics_out" | grep -q '^request id: r' || {
    echo "ci.sh: metrics response carried no request id:"; echo "$metrics_out"; exit 1; }
echo "$metrics_out" | head -n 1 > "$telem_dir/metrics.json"
"$bin" check-json "$telem_dir/metrics.json" --expect-schema nadroid-serve-metrics/1 || {
    echo "ci.sh: metrics document is not valid JSON" >&2; exit 1; }
text_out=$("$bin" request --metrics-text --addr "$serve_addr")
echo "$text_out" | grep -q 'nadroid_serve_requests_total' || {
    echo "ci.sh: metrics text missing requests_total:"; echo "$text_out"; exit 1; }
echo "$text_out" | grep -qF 'series="serve.latency.analyze.miss",quantile="0.99"' || {
    echo "ci.sh: metrics text missing analyze.miss p99:"; echo "$text_out"; exit 1; }

"$bin" request --shutdown --addr "$serve_addr" | grep -q 'shutdown acknowledged' || {
    echo "ci.sh: serve shutdown not acknowledged" >&2; exit 1; }
wait "$serve_pid" || { echo "ci.sh: serve exited nonzero" >&2; exit 1; }
grep -q '"requests": 8' "$serve_out" || {
    echo "ci.sh: serve final stats missing/inconsistent:"; cat "$serve_out"; exit 1; }

# The access log must hold one parseable JSONL record per request, and
# `--slow-us 0` must have captured a span-tree trace for every
# computed request, both valid under the in-repo parser.
"$bin" check-json "$telem_dir/access.jsonl" --lines || {
    echo "ci.sh: access log failed JSONL validation" >&2; exit 1; }
[ "$(wc -l < "$telem_dir/access.jsonl")" -eq 8 ] || {
    echo "ci.sh: access log line count != 8:"; cat "$telem_dir/access.jsonl"; exit 1; }
slow_trace=$(ls "$telem_dir"/slow-r*.trace.json 2>/dev/null | head -n 1 || true)
[ -n "$slow_trace" ] || {
    echo "ci.sh: --slow-us 0 produced no slow traces" >&2; exit 1; }
"$bin" check-json "$slow_trace" || {
    echo "ci.sh: slow trace failed JSON validation" >&2; exit 1; }
grep -q 'serve.analyze' "$slow_trace" || {
    echo "ci.sh: slow trace has no serve.analyze span:"; cat "$slow_trace"; exit 1; }
trap - EXIT
rm -f "$serve_out"
rm -rf "$telem_dir"

cargo run --release -p nadroid-bench --bin serve_bench -- --concurrency 2

# --- confirmation drift gate ---
# Snapshot the committed baseline before confirm_bench refreshes the
# artifact in place, re-run the corpus sweep (its self-checks enforce
# >=1 confirmed, >=1 infeasible, and replay-verification of every
# confirmed schedule), then compare the fresh `confirm` ledger record
# against the snapshot: tallies, states, and per-app confirmed
# populations are deterministic, so any delta is drift, not noise.
confirm_baseline=$(mktemp)
cp BENCH_confirm.json "$confirm_baseline"
cargo run --release -p nadroid-bench --bin confirm_bench -- --threads 2
"$bin" perf gate --against "$confirm_baseline" --current last
rm -f "$confirm_baseline"

# --- refutation drift gate ---
# Same shape as the confirmation gate: snapshot the committed
# BENCH_refute.json, re-run the refutation study (its self-checks
# enforce reason-exact refutation of every planted cluster and
# survival of every kept control), then compare the fresh `refute`
# ledger record against the snapshot — the stage tally, per-reason
# counts, and per-app surviving populations are deterministic.
refute_baseline=$(mktemp)
cp BENCH_refute.json "$refute_baseline"
cargo run --release -p nadroid-bench --bin refute_bench -- --threads 2
"$bin" perf gate --against "$refute_baseline" --current last
rm -f "$refute_baseline"

# Refutation explain smoke: the Gallery app plants one refutation per
# reason family plus a kept control; the rendered chains and the
# provenance sidecar's schema are pinned here (the golden test pins
# the full shape).
refute_prov=$(mktemp)
"$bin" analyze apps/gallery.dsl --provenance "$refute_prov" > /dev/null
"$bin" check-json "$refute_prov" --expect-schema nadroid-provenance/4
rm -f "$refute_prov"
refute_explain=$("$bin" explain apps/gallery.dsl)
echo "$refute_explain" | grep -q 'status: refuted (disabled)' || {
    echo "ci.sh: gallery dialog warning not refuted as disabled" >&2; exit 1; }
echo "$refute_explain" | grep -q 'status: refuted (extended-order)' || {
    echo "ci.sh: gallery fragment warning not refuted by extended order" >&2; exit 1; }
echo "$refute_explain" | grep -q 'status: survived all filters' || {
    echo "ci.sh: gallery kept control did not survive" >&2; exit 1; }
echo "$refute_explain" | grep -q 'no witness exists' || {
    echo "ci.sh: gallery refutation chains missing contradiction" >&2; exit 1; }

# Schema pins for the refreshed artifacts, and the run ledger — which
# now holds at least the `ci` gate record plus the serve_bench,
# confirm_bench, and refute_bench records from this very run — must
# validate line by line.
"$bin" check-json BENCH_serve.json --expect-schema nadroid-serve-bench/3
"$bin" check-json BENCH_confirm.json --expect-schema nadroid-confirm-bench/1
"$bin" check-json BENCH_refute.json --expect-schema nadroid-refute-bench/1
"$bin" check-json Result/ledger.jsonl --lines --expect-schema nadroid-ledger/1
"$bin" perf list

echo "ci.sh: all gates passed"
