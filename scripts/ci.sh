#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/ci.sh
#
# 1. release build of the whole workspace (benches compile too),
# 2. the full test suite,
# 3. clippy with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all gates passed"
