//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this vendored crate implements exactly the API surface the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`, and
//! `seq::SliceRandom::{shuffle, choose}` — backed by SplitMix64. It is
//! deterministic per seed, which is all the corpus generator and the
//! schedule fuzzers require.

#![forbid(unsafe_code)]

/// Core random-number generation: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Types drawable uniformly from the full bit stream (the `Standard`
/// distribution in real rand).
pub trait Standard {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform draw of a whole value (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (statistically strong enough
    /// for test-data generation, trivially seedable, and fast).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixpoint-ish start for tiny seeds.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=1);
            assert!(y <= 1);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = rngs::StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 9 shuffles");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = rngs::StdRng::seed_from_u64(0);
        let empty: &[u32] = &[];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([5u32].choose(&mut rng), Some(&5));
    }
}
