//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this vendored crate implements the benchmarking API surface the
//! workspace uses — `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock sampler: per benchmark it calibrates an
//! iteration batch to ≥ ~25 ms, takes `sample_size` samples, and reports
//! the median per-iteration time. No statistics beyond that, no plots;
//! numbers are printed in criterion's familiar `time: [..]` shape so the
//! output stays grep-compatible.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI-argument hook; accepts and ignores them.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to take per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f`, labeled by `id` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// End the group (printing happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark label: a function name with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Label `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Label by parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{func}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
#[derive(Debug)]
pub struct Bencher {
    /// Measured per-iteration samples.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch, then sample it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: grow the batch until it costs ≥ 25 ms
        // (or a single iteration already does).
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(25);
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the floor rather than doubling blindly.
            let scale = (batch_floor.as_nanos() / elapsed.as_nanos().max(1)) + 1;
            batch = batch.saturating_mul(u64::try_from(scale).unwrap_or(u64::MAX)).min(1 << 20);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let lo = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let hi = *b.samples.last().expect("non-empty");
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("chain", 200).to_string(), "chain/200");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("nop", |b| b.iter(|| black_box(1u32 + 1)));
        g.finish();
    }
}
