//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this vendored crate implements the slice of proptest this workspace
//! uses: the [`proptest!`] macro, `prop_assert*`, integer-range / tuple /
//! string-regex / collection / sample strategies, `any::<T>()`, and
//! `prop_map`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name), so failures reproduce by re-running the
//! test. Shrinking is not implemented — a failing case is reported as-is.

#![forbid(unsafe_code)]

/// Test-runner plumbing: the RNG and the per-suite configuration.
pub mod test_runner {
    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name).
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample empty range");
            self.next_u64() % n
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

    /// String literals act as regex strategies. Only the subset the
    /// workspace uses is supported: one character class with optional
    /// ranges and escapes, followed by a `{min,max}` repetition, e.g.
    /// `"[ -~\n]{0,400}"`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_regex(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{min,max}` into (alphabet, min, max).
    ///
    /// # Panics
    ///
    /// Panics on regex features beyond that subset.
    fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        let mut it = pattern.chars().peekable();
        assert_eq!(it.next(), Some('['), "unsupported regex: {pattern}");
        let mut chars: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = it.next().unwrap_or_else(|| {
                panic!("unterminated character class in regex: {pattern}")
            });
            let literal = match c {
                ']' => break,
                '\\' => match it.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(other) => other,
                    None => panic!("dangling escape in regex: {pattern}"),
                },
                '-' if pending.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                    let lo = pending.take().expect("range start");
                    let hi = match it.next() {
                        Some('\\') => it.next().expect("escaped range end"),
                        Some(h) => h,
                        None => panic!("unterminated range in regex: {pattern}"),
                    };
                    for u in (lo as u32)..=(hi as u32) {
                        chars.extend(char::from_u32(u));
                    }
                    continue;
                }
                other => other,
            };
            if let Some(prev) = pending.replace(literal) {
                chars.push(prev);
            }
        }
        if let Some(prev) = pending {
            chars.push(prev);
        }
        assert!(!chars.is_empty(), "empty character class in regex: {pattern}");
        let rest: String = it.collect();
        let (min, max) = if rest.is_empty() {
            (1, 1)
        } else {
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported regex suffix: {pattern}"));
            match inner.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repetition min"),
                    b.trim().parse().expect("repetition max"),
                ),
                None => {
                    let n = inner.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        };
        assert!(min <= max, "bad repetition in regex: {pattern}");
        (chars, min, max)
    }
}

/// `any::<T>()` — the canonical strategy of a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draw one canonical value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling from fixed sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed vector.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// A uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; accepts a format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // Mirror real proptest: the body runs in a closure
                    // returning Result, so `return Ok(())` works as an
                    // early exit.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                #[allow(unreachable_code)]
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reject)) => panic!(
                            "proptest {}: case {case}/{} rejected: {reject}",
                            stringify!($name),
                            config.cases,
                        ),
                        Err(panic) => {
                            eprintln!(
                                "proptest {}: failed at case {case}/{} (deterministic; rerun reproduces)",
                                stringify!($name),
                                config.cases,
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 0usize..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 2);
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u32..5, 0u32..5), 0..7)) {
            prop_assert!(v.len() < 7);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn string_regex_subset(s in "[a-c x]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ' | 'x')));
        }

        #[test]
        fn select_and_map(
            k in prop::sample::select(vec![10u32, 20, 30]),
            m in (0u32..3).prop_map(|x| x * 2),
        ) {
            prop_assert!(k % 10 == 0);
            prop_assert!(m % 2 == 0 && m < 6);
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // Not a tautology check — just exercise the strategy.
            let _ = x.wrapping_add(y);
        }
    }

    #[test]
    fn escape_and_range_classes_parse() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_name("escape");
        let s = "[ -~\\n]{0,40}".sample(&mut rng);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
