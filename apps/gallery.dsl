// Model of a photo-gallery app exercising the predicate-aware ordering
// layer: the upload progress dialog is dismissed in onStop, which
// disables the Dialog family before the onDestroy free on every
// lifecycle path (refuted: disabled); the album fragment's view
// callback is ordered before the hosting activity ever detaches it
// (refuted: extended-order); and the preview dialog is dismissed only
// in the skippable onPause, so that warning rightly survives.
app Gallery

activity GalleryActivity {
    cb onCreate {
        t1 = static UploadActivity
        t2 = static AlbumActivity
        t3 = static PreviewActivity
    }
}

activity UploadActivity {
    field progress: UploadDialog
    field session: UploadActivity
    cb onCreate {
        progress = new UploadDialog
        show progress
        session = new UploadActivity
    }
    cb onStop { dismiss progress }
    cb onDestroy { session = null }
}

dialog UploadDialog in UploadActivity {
    cb onShow { use outer.session }
}

activity AlbumActivity {
    field cache: AlbumActivity
    cb onCreate { cache = new AlbumActivity }
}

fragment AlbumFragment in AlbumActivity {
    cb onCreateView { use AlbumActivity.cache }
    cb onDetach { AlbumActivity.cache = null }
}

activity PreviewActivity {
    field preview: PreviewDialog
    field bitmap: PreviewActivity
    cb onCreate {
        preview = new PreviewDialog
        show preview
        bitmap = new PreviewActivity
    }
    cb onPause { dismiss preview }
    cb onDestroy { bitmap = null }
}

dialog PreviewDialog in PreviewActivity {
    cb onShow { use outer.bitmap }
}

manifest { main GalleryActivity }
