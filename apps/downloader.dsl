// A no-sleep energy bug (§9): the worker thread's acquire is never
// balanced, and the onResume/onPause pair is racy.
app Downloader

activity DownloadActivity {
    field wl: WakeLock
    cb onCreate { wl = new WakeLock }
    cb onResume {
        t1 = load this DownloadActivity.wl
        acquire t1
        spawn Worker
    }
    cb onPause {
        t1 = load this DownloadActivity.wl
        release t1
    }
}

thread Worker in DownloadActivity {
    cb run {
        t1 = load this Worker.$outer
        t2 = load t1 DownloadActivity.wl
        acquire t2
    }
}

class WakeLock { }

manifest { main DownloadActivity }
