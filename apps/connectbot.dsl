// Model of the ConnectBot UAFs from Figure 1(a)/(b) of the paper:
// a console activity bound to a terminal service; the disconnect
// callback frees fields that a context menu and a posted prompt use.
app ConnectBot

activity ConsoleActivity {
    field bound: TerminalManager
    field hostBridge: TerminalManager
    cb onCreate { bind this }
    cb onServiceConnected {
        bound = new TerminalManager
        hostBridge = new TerminalManager
    }
    cb onServiceDisconnected {
        bound = null
        hostBridge = null
    }
    cb onCreateContextMenu { use bound }
    cb onClick {
        if hostBridge != null { post PromptRunnable }
    }
}

runnable PromptRunnable in ConsoleActivity {
    cb run { use outer.hostBridge }
}

class TerminalManager { }

manifest { main ConsoleActivity }
