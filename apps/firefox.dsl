// Model of the FireFox UAF from Figure 1(c): a background task nulls
// jClient while onPause checks-then-uses it without atomicity.
app FireFox

activity GeckoApp {
    field jClient: JavaClient
    cb onCreate { jClient = new JavaClient }
    cb onResume { spawn AbortTask }
    cb onPause {
        if jClient != null { use jClient }
    }
}

thread AbortTask in GeckoApp {
    cb run { outer.jClient = null }
}

class JavaClient { }

manifest { main GeckoApp }
