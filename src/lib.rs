//! Umbrella crate for the nAdroid-rs workspace.
//!
//! Re-exports every sub-crate under one roof so examples and integration
//! tests can use a single dependency. Downstream users normally depend on
//! [`nadroid_core`] (the pipeline) directly.

#![forbid(unsafe_code)]

pub use nadroid_android as android;
pub use nadroid_cli as cli;
pub use nadroid_confirm as confirm;
pub use nadroid_core as core;
pub use nadroid_corpus as corpus;
pub use nadroid_datalog as datalog;
pub use nadroid_detector as detector;
pub use nadroid_deva as deva;
pub use nadroid_dynamic as dynamic;
pub use nadroid_filters as filters;
pub use nadroid_hb as hb;
pub use nadroid_ir as ir;
pub use nadroid_obs as obs;
pub use nadroid_par as par;
pub use nadroid_pointsto as pointsto;
pub use nadroid_serve as serve;
pub use nadroid_threadify as threadify;
